// Protocol-level tests of the arbiter token-passing algorithm: scripted
// scenarios with exact message-count and state assertions, including the
// paper's Section 2.2 walk-through.
#include <gtest/gtest.h>

#include "core/events.hpp"
#include "obs/lifecycle.hpp"
#include "testbed.hpp"

namespace dmx::core {
namespace {

using testbed::MutexCluster;

mutex::ParamSet unit_params() {
  // The paper's illustrative example: every duration is 1 time unit.
  mutex::ParamSet p;
  p.set("t_req", 1.0).set("t_fwd", 1.0);
  return p;
}

TEST(ArbiterProtocol, PaperSection22Example) {
  // Five nodes; node 0 is the initial arbiter (the paper's node 1).  Two
  // requests arrive during the collection window, one more during the
  // forwarding phase and must be forwarded to the new arbiter.
  MutexCluster tb("arbiter-tp", 5, unit_params(), /*t_msg=*/1.0,
                  /*t_exec=*/1.0);
  tb.submit_at(0.0, 1);   // REQUEST arrives at the arbiter at t=1.0
  tb.submit_at(0.2, 4);   // arrives t=1.2, same collection window
  tb.submit_at(1.9, 3);   // arrives t=2.9, during the forwarding phase
  tb.sim().run();

  EXPECT_EQ(tb.total_completed(), 3u);
  EXPECT_EQ(tb.monitor.violations(), 0u);

  const auto stats = tb.protocol_stats();
  EXPECT_EQ(stats.requests_forwarded, 1u);
  EXPECT_EQ(stats.dispatches, 2u);  // batch {1,4}, then batch {3}

  const auto by_type = tb.network().stats().sent_by_type();
  EXPECT_EQ(by_type.get("REQUEST"), 4u);     // 3 originals + 1 forward
  EXPECT_EQ(by_type.get("PRIVILEGE"), 3u);   // 0->1, 1->4, 4->3
  EXPECT_EQ(by_type.get("NEW-ARBITER"), 8u); // two broadcasts x (N-1)

  // The first batch's tail (node 4) served as arbiter, then node 3.
  EXPECT_EQ(tb.arbiter(4).times_arbiter(), 1u);
  EXPECT_EQ(tb.arbiter(3).times_arbiter(), 1u);
  EXPECT_TRUE(tb.arbiter(3).is_arbiter());
  EXPECT_TRUE(tb.arbiter(3).has_token());
  // Everybody agrees on the final arbiter.
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(tb.arbiter(i).known_arbiter(), net::NodeId{3}) << "node " << i;
  }
}

TEST(ArbiterProtocol, ArbiterSelfRequestCostsZeroMessages) {
  // Eq. (1)'s 1/N case: the requester is the arbiter itself.
  MutexCluster tb("arbiter-tp", 5, unit_params(), 1.0, 1.0);
  tb.submit_at(0.5, 0);
  tb.sim().run();
  EXPECT_EQ(tb.total_completed(), 1u);
  EXPECT_EQ(tb.network().stats().sent, 0u);
  EXPECT_TRUE(tb.arbiter(0).is_arbiter());
  EXPECT_TRUE(tb.arbiter(0).has_token());
}

TEST(ArbiterProtocol, SingleRemoteRequestCostsNPlusOneMessages) {
  // Eq. (1)'s other case: 1 REQUEST + (N-1) NEW-ARBITER + 1 PRIVILEGE.
  MutexCluster tb("arbiter-tp", 5, unit_params(), 1.0, 1.0);
  tb.submit_at(0.0, 2);
  tb.sim().run();
  EXPECT_EQ(tb.total_completed(), 1u);
  EXPECT_EQ(tb.network().stats().sent, 6u);  // N + 1 for N = 5
  // The sole requester is the new arbiter and ends up holding the token.
  EXPECT_TRUE(tb.arbiter(2).is_arbiter());
  EXPECT_TRUE(tb.arbiter(2).has_token());
  EXPECT_FALSE(tb.arbiter(0).is_arbiter());
}

TEST(ArbiterProtocol, CollectionWindowBatchesFcfs) {
  MutexCluster tb("arbiter-tp", 5, unit_params(), 1.0, 1.0);
  // All three arrive inside one collection window (opened at t=1.0 by the
  // first arrival): one dispatch, FCFS order 3, 1, 2.
  tb.submit_at(0.0, 3);
  tb.submit_at(0.3, 1);
  tb.submit_at(0.6, 2);
  std::vector<int> completion_order;
  for (std::size_t i = 0; i < 5; ++i) {
    tb.drivers[i]->set_completion_callback(
        [&completion_order, i](const mutex::CsRequest&) {
          completion_order.push_back(static_cast<int>(i));
        });
  }
  tb.sim().run();
  EXPECT_EQ(tb.protocol_stats().dispatches, 1u);
  EXPECT_EQ(completion_order, (std::vector<int>{3, 1, 2}));
}

TEST(ArbiterProtocol, PriorityOrderingWithinBatch) {
  mutex::ParamSet p = unit_params();
  p.set("order", std::string("priority"));
  MutexCluster tb("arbiter-tp", 5, p, 1.0, 1.0);
  tb.submit_at(0.0, 1, /*priority=*/1);
  tb.submit_at(0.3, 2, /*priority=*/5);
  tb.submit_at(0.6, 3, /*priority=*/3);
  std::vector<int> completion_order;
  for (std::size_t i = 0; i < 5; ++i) {
    tb.drivers[i]->set_completion_callback(
        [&completion_order, i](const mutex::CsRequest&) {
          completion_order.push_back(static_cast<int>(i));
        });
  }
  tb.sim().run();
  EXPECT_EQ(completion_order, (std::vector<int>{2, 3, 1}));
  EXPECT_EQ(tb.monitor.violations(), 0u);
}

TEST(ArbiterProtocol, DroppedRequestIsResubmittedViaNewArbiterMiss) {
  // With the forwarding phase disabled, late requests are dropped; the
  // paper's §6 rule (missing from tau consecutive NEW-ARBITER Q-lists =>
  // retransmit) must still serve every request.
  mutex::ParamSet p;
  p.set("t_req", 0.1).set("t_fwd", 0.0).set("resubmit_after_misses", 1.0);
  harness::ExperimentConfig cfg;
  cfg.algorithm = "arbiter-tp";
  cfg.params = p;
  cfg.n_nodes = 10;
  cfg.lambda = 0.4;
  cfg.total_requests = 20'000;
  cfg.seed = 21;
  const auto r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.safety_violations, 0u);
  EXPECT_GT(r.protocol.requests_dropped_stale, 0u);
  EXPECT_GT(r.protocol.resubmissions, 0u);
}

TEST(ArbiterProtocol, ForwardingPhaseSavesLateRequests) {
  // Same load as above but with the paper's forwarding phase enabled: late
  // requests are forwarded instead of dropped, so far fewer drops occur.
  auto run_with_fwd = [](double t_fwd) {
    harness::ExperimentConfig cfg;
    cfg.algorithm = "arbiter-tp";
    cfg.params.set("t_req", 0.1).set("t_fwd", t_fwd);
    cfg.n_nodes = 10;
    cfg.lambda = 0.4;
    cfg.total_requests = 20'000;
    cfg.seed = 21;
    return harness::run_experiment(cfg);
  };
  const auto without = run_with_fwd(0.0);
  const auto with = run_with_fwd(0.1);
  EXPECT_GT(with.protocol.requests_forwarded, 0u);
  EXPECT_LT(with.protocol.requests_dropped_stale,
            without.protocol.requests_dropped_stale);
  // Eq. (7)'s insight: the forwarding window must cover NEW-ARBITER
  // propagation plus request transit (~2*T_msg = 0.2); with t_fwd = 0.25
  // drops all but vanish.
  const auto generous = run_with_fwd(0.25);
  EXPECT_LT(generous.protocol.requests_dropped_stale,
            without.protocol.requests_dropped_stale / 20);
}

TEST(ArbiterProtocol, LongerCollectionWindowFewerMessagesHigherDelay) {
  // The paper's central tuning claim (§3.3): T_req = 0.2 vs 0.1 lowers the
  // message count but raises the delay.
  auto run_with_treq = [](double t_req) {
    harness::ExperimentConfig cfg;
    cfg.algorithm = "arbiter-tp";
    cfg.params.set("t_req", t_req).set("t_fwd", 0.1);
    cfg.n_nodes = 10;
    cfg.lambda = 0.15;
    cfg.total_requests = 30'000;
    cfg.seed = 3;
    return harness::run_experiment(cfg);
  };
  const auto short_window = run_with_treq(0.1);
  const auto long_window = run_with_treq(0.2);
  EXPECT_LT(long_window.messages_per_cs, short_window.messages_per_cs);
  EXPECT_GT(long_window.service_time.mean(), short_window.service_time.mean());
}

TEST(ArbiterProtocol, SuppressSelfBroadcastAblationCutsBroadcasts) {
  auto run = [](bool suppress) {
    harness::ExperimentConfig cfg;
    cfg.algorithm = "arbiter-tp";
    cfg.params.set("suppress_self_broadcast", suppress ? 1.0 : 0.0);
    cfg.n_nodes = 10;
    cfg.lambda = 5.0;
    cfg.total_requests = 10'000;
    cfg.seed = 9;
    return harness::run_experiment(cfg);
  };
  const auto paper = run(false);
  const auto ablated = run(true);
  EXPECT_NEAR(paper.messages_per_cs, 2.8, 0.2);
  EXPECT_LT(ablated.messages_per_cs, 2.1);
  EXPECT_TRUE(ablated.drained);
  EXPECT_EQ(ablated.safety_violations, 0u);
}

TEST(ArbiterProtocol, DeterministicForSeed) {
  auto run = [] {
    harness::ExperimentConfig cfg;
    cfg.algorithm = "arbiter-tp";
    cfg.n_nodes = 10;
    cfg.lambda = 0.5;
    cfg.total_requests = 5'000;
    cfg.seed = 77;
    return harness::run_experiment(cfg);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.messages_total, b.messages_total);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_DOUBLE_EQ(a.service_time.mean(), b.service_time.mean());
  EXPECT_DOUBLE_EQ(a.sim_duration_units, b.sim_duration_units);
}

TEST(ArbiterProtocol, FcfsOrderWithinBatchPreserved) {
  // §5.1 fairness: requests are served in the order the arbiter collected
  // them.  Verify grants never reorder within a dispatch across a longer
  // random run by checking per-node completions are monotone in submit time
  // (drivers serialize per node, so cross-node FCFS within batches is the
  // interesting property — spot-check with the trace).
  MutexCluster tb("arbiter-tp", 4, unit_params(), 1.0, 1.0);
  tb.submit_at(0.0, 1);
  tb.submit_at(0.1, 2);
  tb.submit_at(0.2, 3);
  std::vector<int> order;
  for (std::size_t i = 0; i < 4; ++i) {
    tb.drivers[i]->set_completion_callback(
        [&order, i](const mutex::CsRequest&) {
          order.push_back(static_cast<int>(i));
        });
  }
  tb.sim().run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ArbiterProtocol, TraceRecordsProtocolEvents) {
  MutexCluster tb("arbiter-tp", 5, unit_params(), 1.0, 1.0);
  tb.submit_at(0.0, 2);
  tb.sim().run();
  // Typed queries for the kinds the walk-through must hit; the category
  // compat query covers everything registered under "arbiter".
  EXPECT_GE(tb.sink->count_kind(core::kEvDispatch), 1u);
  EXPECT_GE(tb.sink->count_kind(core::kEvCsEnter), 1u);
  EXPECT_GE(tb.sink->count_kind(obs::kEvCsGranted), 1u);
  EXPECT_GE(tb.sink->by_category("arbiter").size(), 1u);
}

TEST(ArbiterProtocol, RejectsDoubleRequest) {
  MutexCluster tb("arbiter-tp", 3, unit_params(), 1.0, 1.0);
  mutex::CsRequest r;
  r.request_id = 1;
  r.node = net::NodeId{1};
  tb.arbiter(1).request(r);
  EXPECT_THROW(tb.arbiter(1).request(r), std::logic_error);
  EXPECT_THROW(tb.arbiter(2).release(), std::logic_error);
}

TEST(ArbiterProtocol, ConstructorValidation) {
  ArbiterParams p;
  EXPECT_THROW(ArbiterMutex(p, 0), std::invalid_argument);
  p.initial_arbiter = net::NodeId{9};
  EXPECT_THROW(ArbiterMutex(p, 3), std::invalid_argument);
  ArbiterParams sf;
  sf.starvation_free = true;
  sf.monitor = net::NodeId{7};
  EXPECT_THROW(ArbiterMutex(sf, 3), std::invalid_argument);
}

}  // namespace
}  // namespace dmx::core
