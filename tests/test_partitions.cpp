// Network-partition behaviour of the recovery machinery.
//
// The paper's §6 does not treat partitions.  These tests pin down what its
// mechanisms actually do when the network splits: the system heals and
// serves everybody (liveness restored), but token regeneration without a
// quorum admits a *split-brain* window while the partition lasts — an
// inherent limitation of §6's design that we document deterministically
// rather than hide (see DESIGN.md §5).
#include <gtest/gtest.h>

#include "testbed.hpp"

namespace dmx::core {
namespace {

mutex::ParamSet partition_params() {
  mutex::ParamSet p;
  p.set("recovery", 1.0)
      .set("token_timeout", 2.0)
      .set("enquiry_timeout", 0.5)
      .set("arbiter_timeout", 4.0)
      .set("probe_timeout", 0.5)
      .set("resubmit_after_misses", 1.0)
      .set("request_retry_timeout", 3.0);
  return p;
}

void split_at(testbed::MutexCluster& tb, double t) {
  tb.sim().schedule_at(sim::SimTime::units(t), [&tb] {
    tb.network().faults().set_partition(
        {{net::NodeId{0}, net::NodeId{1}, net::NodeId{2}},
         {net::NodeId{3}, net::NodeId{4}}});
  });
}

void heal_at(testbed::MutexCluster& tb, double t) {
  tb.sim().schedule_at(sim::SimTime::units(t),
                       [&tb] { tb.network().faults().heal_partition(); });
}

TEST(Partitions, HealRestoresLivenessForEveryone) {
  testbed::MutexCluster tb("arbiter-tp", 5, partition_params());
  tb.submit_at(0.0, 4);  // token ends up in the {3,4} side
  split_at(tb, 2.0);
  tb.submit_at(3.0, 0);  // majority demand during the partition
  tb.submit_at(3.5, 1);
  tb.submit_at(4.0, 3);  // minority keeps using the genuine token
  heal_at(tb, 30.0);
  tb.sim().run_until(sim::SimTime::units(200.0));
  EXPECT_EQ(tb.total_completed(), tb.total_submitted());
  const auto s = tb.protocol_stats();
  // The majority took over arbitership and regenerated a token.
  EXPECT_GE(s.arbiter_takeovers, 1u);
  EXPECT_GE(s.tokens_regenerated, 1u);
}

TEST(Partitions, MinorityRequestersServedAfterHeal) {
  testbed::MutexCluster tb("arbiter-tp", 5, partition_params());
  tb.submit_at(0.0, 1);  // token + arbitership stay in the majority side
  split_at(tb, 2.0);
  tb.submit_at(3.0, 3);  // minority demand cannot reach the arbiter
  tb.submit_at(3.5, 4);
  heal_at(tb, 20.0);
  tb.sim().run_until(sim::SimTime::units(200.0));
  EXPECT_EQ(tb.total_completed(), 3u);
  EXPECT_EQ(tb.monitor.violations(), 0u);  // single token side never forked
}

// KNOWN LIMITATION (inherited from the paper's §6): regeneration is not
// quorum-guarded, so a majority that cannot reach the token-holding
// minority will regenerate while the original token is still in use —
// two tokens exist until the epochs reconcile after healing.  With a long
// critical section the two sides' CSs overlap.  This test *demonstrates*
// the hazard deterministically; a quorum check before regeneration (not in
// the paper) would remove it at the price of blocking minority-side
// recovery.
TEST(Partitions, SplitBrainHazardOfQuorumlessRegeneration) {
  testbed::MutexCluster tb("arbiter-tp", 5, partition_params(),
                           /*t_msg=*/0.1, /*t_exec=*/1.0);
  tb.submit_at(0.0, 4);   // token into the {3,4} side
  split_at(tb, 2.0);
  tb.submit_at(3.0, 0);   // majority demand -> takeover -> regeneration
  tb.submit_at(3.5, 1);
  tb.submit_at(4.0, 3);   // minority keeps the genuine token busy
  tb.submit_at(8.0, 3);
  tb.submit_at(9.2, 4);   // in CS exactly when the regenerated token grants
  heal_at(tb, 30.0);
  tb.sim().run_until(sim::SimTime::units(200.0));
  EXPECT_EQ(tb.total_completed(), tb.total_submitted());  // liveness holds
  EXPECT_GE(tb.protocol_stats().tokens_regenerated, 1u);
  // The documented hazard: overlapping critical sections across the split.
  EXPECT_GE(tb.monitor.violations(), 1u)
      << "if this now passes with 0 violations, quorum-guarded regeneration "
         "was added - update DESIGN.md section 5 accordingly";
  // After healing, the epochs reconcile: the stale token is eventually
  // discarded and the run drains under a single token.
}

// Companion to the hazard above: the identical deterministic schedule with
// quorum-guarded regeneration (recovery_quorum=1) never mints the second
// token.  The majority side reaches a counting majority (3 of 5) during the
// cut, but the freshest dispatch views still name the isolated holder, so
// every invalidation round parks until the heal lets the holder answer.
// The price is availability — majority demand waits out the partition —
// which bench/table_partitions quantifies.
TEST(Partitions, QuorumGuardClosesTheSplitBrainWindow) {
  mutex::ParamSet params = partition_params();
  params.set("recovery_quorum", 1.0);
  testbed::MutexCluster tb("arbiter-tp", 5, params,
                           /*t_msg=*/0.1, /*t_exec=*/1.0);
  tb.submit_at(0.0, 4);   // token into the {3,4} side
  split_at(tb, 2.0);
  tb.submit_at(3.0, 0);   // majority demand -> takeover attempt -> parked
  tb.submit_at(3.5, 1);
  tb.submit_at(4.0, 3);   // minority keeps the genuine token busy
  tb.submit_at(8.0, 3);
  tb.submit_at(9.2, 4);   // overlapped with the second token in the hazard
  heal_at(tb, 30.0);
  tb.sim().run_until(sim::SimTime::units(200.0));
  EXPECT_EQ(tb.total_completed(), tb.total_submitted());  // liveness holds
  EXPECT_EQ(tb.monitor.violations(), 0u);  // the hazard is gone
  const auto s = tb.protocol_stats();
  EXPECT_EQ(s.tokens_regenerated, 0u);  // the genuine token was never forked
  EXPECT_GE(s.quorum_blocked, 1u);      // the guard actually fired
  // After the heal the holder answers the candidate's ENQUIRY with a
  // NEW-ARBITER reassert, folding the majority back under its epoch.
  EXPECT_GE(s.quorum_reconciles, 1u);
}

}  // namespace
}  // namespace dmx::core
