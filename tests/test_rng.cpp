#include <gtest/gtest.h>

#include <array>
#include <stdexcept>

#include "sim/rng.hpp"

namespace dmx::sim {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform01() == b.uniform01()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, Uniform01Range) {
  Rng r(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = r.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(3);
  std::array<int, 5> seen{};
  for (int i = 0; i < 5'000; ++i) {
    const std::int64_t v = r.uniform_int(0, 4);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 4);
    ++seen[static_cast<std::size_t>(v)];
  }
  for (int c : seen) EXPECT_GT(c, 800);  // roughly uniform
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng r(11);
  double sum = 0.0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.005);
}

TEST(Rng, ExponentialTimeMean) {
  Rng r(13);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    sum += r.exponential_time(SimTime::units(2.0)).to_units();
  }
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, ChanceExtremes) {
  Rng r(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng r(19);
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) hits += r.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 100'000.0, 0.3, 0.01);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng r(23);
  const std::array<double, 3> w = {1.0, 0.0, 3.0};
  std::array<int, 3> seen{};
  for (int i = 0; i < 40'000; ++i) ++seen[r.weighted_index(w)];
  EXPECT_EQ(seen[1], 0);
  EXPECT_NEAR(static_cast<double>(seen[2]) / static_cast<double>(seen[0]), 3.0,
              0.3);
}

TEST(Rng, WeightedIndexValidation) {
  Rng r(29);
  EXPECT_THROW(r.weighted_index({}), std::invalid_argument);
  const std::array<double, 2> neg = {1.0, -1.0};
  EXPECT_THROW(r.weighted_index(neg), std::invalid_argument);
  const std::array<double, 2> zero = {0.0, 0.0};
  EXPECT_THROW(r.weighted_index(zero), std::invalid_argument);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng root(31);
  Rng a = root.fork();
  Rng b = root.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform01() == b.uniform01()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, ForkIsDeterministic) {
  Rng r1(5), r2(5);
  Rng c1 = r1.fork();
  Rng c2 = r2.fork();
  for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(c1.uniform01(), c2.uniform01());
}

TEST(Rng, InvalidArgumentsThrow) {
  Rng r(37);
  EXPECT_THROW(r.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(r.exponential(-1.0), std::invalid_argument);
  EXPECT_THROW(r.uniform(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(r.uniform_int(5, 4), std::invalid_argument);
}

}  // namespace
}  // namespace dmx::sim
