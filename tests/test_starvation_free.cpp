// Tests for the starvation-free variant (§4.1): monitor node, forward-count
// threshold tau, resubmission to the monitor, the adaptive token-to-monitor
// period, monitor rotation (§5.1) and the idle-system patience safeguard.
#include <gtest/gtest.h>

#include "core/messages.hpp"
#include "testbed.hpp"

namespace dmx::core {
namespace {

using testbed::MutexCluster;

TEST(StarvationFree, OverforwardedRequestDroppedAtArbiter) {
  mutex::ParamSet p;
  p.set("starvation_free", 1.0).set("tau", 3.0).set("monitor", 4.0);
  MutexCluster tb("arbiter-tp-sf", 5, p);
  // Craft a request that has been forwarded past tau and hand it to the
  // arbiter (node 0) directly.
  QEntry e;
  e.node = net::NodeId{1};
  e.request_id = 991;
  e.forward_count = 4;  // > tau
  tb.network().send(net::NodeId{1}, net::NodeId{0},
                    net::make_payload<RequestMsg>(e));
  QEntry ok = e;
  ok.request_id = 992;
  ok.forward_count = 3;  // == tau: kept
  tb.network().send(net::NodeId{1}, net::NodeId{0},
                    net::make_payload<RequestMsg>(ok));
  tb.sim().run_until(sim::SimTime::units(0.5));
  EXPECT_EQ(tb.arbiter(0).protocol_stats().requests_dropped_overforwarded, 1u);
}

TEST(StarvationFree, MonitorExemptRequestNeverDropped) {
  mutex::ParamSet p;
  p.set("starvation_free", 1.0).set("tau", 1.0).set("monitor", 4.0);
  MutexCluster tb("arbiter-tp-sf", 5, p);
  QEntry e;
  e.node = net::NodeId{1};
  e.request_id = 993;
  e.forward_count = 99;
  tb.network().send(net::NodeId{4}, net::NodeId{0},
                    net::make_payload<RequestMsg>(e, /*to_monitor=*/false,
                                                  /*from_monitor=*/true));
  tb.sim().run_until(sim::SimTime::units(0.5));
  EXPECT_EQ(tb.arbiter(0).protocol_stats().requests_dropped_overforwarded, 0u);
}

TEST(StarvationFree, DroppedRequestDivertsToMonitorAndIsServed) {
  // Node 1's REQUEST is lost; with tau = 1 a single NEW-ARBITER miss makes
  // it resubmit to the monitor, which buffers it until the token visits.
  mutex::ParamSet p;
  p.set("starvation_free", 1.0)
      .set("tau", 1.0)
      .set("monitor", 4.0)
      .set("resubmit_after_misses", 0.0)   // isolate the monitor path
      .set("request_retry_timeout", 0.0);  // no timer fallback either
  MutexCluster tb("arbiter-tp-sf", 5, p);
  tb.network().faults().drop_next_of_type("REQUEST", net::NodeId{1});
  tb.submit_at(0.0, 1);  // this one is dropped
  tb.submit_at(0.5, 2);  // generates the dispatch + NEW-ARBITER traffic
  tb.submit_at(3.0, 3);  // generates the next dispatch, whose monitor visit
                         // (low-load period = every batch) releases node 1
  tb.sim().run();
  EXPECT_EQ(tb.total_completed(), 3u);
  EXPECT_EQ(tb.monitor.violations(), 0u);
  const auto s = tb.protocol_stats();
  EXPECT_GE(s.monitor_resubmissions, 1u);
  EXPECT_GE(s.monitor_buffered, 1u);
  EXPECT_GE(s.monitor_visits, 1u);
}

TEST(StarvationFree, MonitorPatienceReleasesBufferWhenSystemGoesIdle) {
  // The monitor ends up holding a request while no further dispatches occur;
  // the patience safeguard hands it to the arbiter as an undroppable
  // REQUEST.
  mutex::ParamSet p;
  p.set("starvation_free", 1.0)
      .set("tau", 1.0)
      .set("monitor", 4.0)
      .set("resubmit_after_misses", 0.0)
      .set("request_retry_timeout", 0.0)
      .set("monitor_patience", 2.0);
  MutexCluster tb("arbiter-tp-sf", 5, p);
  // Drop node 1's request AND make the very next dispatch's token go the
  // normal route by keeping node 2's batch before the resubmission lands.
  tb.network().faults().drop_next_of_type("REQUEST", net::NodeId{1});
  tb.submit_at(0.0, 1);
  tb.submit_at(0.2, 2);  // the only other traffic; after its CS, idle
  tb.sim().run();
  EXPECT_EQ(tb.total_completed(), 2u);
  const auto s = tb.protocol_stats();
  EXPECT_GE(s.monitor_patience_releases + s.monitor_visits, 1u);
}

TEST(StarvationFree, AdaptivePeriodVisitsOftenAtLowLoadRarelyAtHighLoad) {
  auto run = [](double lambda) {
    harness::ExperimentConfig cfg;
    cfg.algorithm = "arbiter-tp-sf";
    cfg.n_nodes = 10;
    cfg.lambda = lambda;
    cfg.total_requests = 20'000;
    cfg.seed = 31;
    return harness::run_experiment(cfg);
  };
  const auto low = run(0.01);
  const auto high = run(5.0);
  ASSERT_GT(low.protocol.dispatches, 0u);
  ASSERT_GT(high.protocol.dispatches, 0u);
  const double low_ratio = static_cast<double>(low.protocol.monitor_visits) /
                           static_cast<double>(low.protocol.dispatches);
  const double high_ratio = static_cast<double>(high.protocol.monitor_visits) /
                            static_cast<double>(high.protocol.dispatches);
  // Low load: average Q size ~1 => the token visits the monitor nearly every
  // batch.  High load: average Q ~N => every ~N-th batch.
  EXPECT_GT(low_ratio, 0.6);
  EXPECT_LT(high_ratio, 0.35);
}

TEST(StarvationFree, OverheadMatchesSection41Claims) {
  // +~1 message per CS at very low load, negligible at high load.
  auto run = [](const std::string& algo, double lambda) {
    harness::ExperimentConfig cfg;
    cfg.algorithm = algo;
    cfg.n_nodes = 10;
    cfg.lambda = lambda;
    cfg.total_requests = 20'000;
    cfg.seed = 8;
    return harness::run_experiment(cfg);
  };
  const auto basic_low = run("arbiter-tp", 0.01);
  const auto sf_low = run("arbiter-tp-sf", 0.01);
  const double low_overhead =
      sf_low.messages_per_cs - basic_low.messages_per_cs;
  EXPECT_GT(low_overhead, 0.4);
  EXPECT_LT(low_overhead, 2.0);

  const auto basic_high = run("arbiter-tp", 5.0);
  const auto sf_high = run("arbiter-tp-sf", 5.0);
  const double high_overhead =
      sf_high.messages_per_cs - basic_high.messages_per_cs;
  EXPECT_LT(high_overhead, 0.5);
  EXPECT_TRUE(sf_low.drained);
  EXPECT_TRUE(sf_high.drained);
  EXPECT_EQ(sf_low.safety_violations + sf_high.safety_violations, 0u);
}

TEST(StarvationFree, RotatingMonitorMovesTheRole) {
  harness::ExperimentConfig cfg;
  cfg.algorithm = "arbiter-tp-sf";
  cfg.params.set("rotate_monitor", 1.0);
  cfg.n_nodes = 6;
  cfg.lambda = 0.2;
  cfg.total_requests = 2'000;
  cfg.seed = 14;
  const auto r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.safety_violations, 0u);
  EXPECT_GT(r.protocol.monitor_visits, 1u);
}

TEST(StarvationFree, HarshDroppingStillServesEveryRequest) {
  // t_fwd = 0 maximizes drops; tau caps forwarding; the monitor is the
  // safety net.  Liveness must hold.
  harness::ExperimentConfig cfg;
  cfg.algorithm = "arbiter-tp-sf";
  cfg.params.set("t_fwd", 0.0).set("tau", 2.0);
  cfg.n_nodes = 10;
  cfg.lambda = 0.4;
  cfg.total_requests = 20'000;
  cfg.seed = 4;
  const auto r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.safety_violations, 0u);
  EXPECT_GT(r.protocol.requests_dropped_stale, 0u);
}

TEST(StarvationFree, MonitorAsInitialArbiterWorks) {
  // Degenerate wiring: monitor == initial arbiter == node 0.
  harness::ExperimentConfig cfg;
  cfg.algorithm = "arbiter-tp-sf";
  cfg.params.set("monitor", 0.0);
  cfg.n_nodes = 5;
  cfg.lambda = 0.5;
  cfg.total_requests = 2'000;
  cfg.seed = 2;
  const auto r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.safety_violations, 0u);
}

}  // namespace
}  // namespace dmx::core
