// Shared fixture for protocol-level tests: a cluster of N mutex algorithm
// instances with drivers, a safety monitor and a memory trace sink, driven
// manually (no workload generator) so tests can script exact scenarios.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/arbiter_mutex.hpp"
#include "harness/experiment.hpp"
#include "mutex/cs_driver.hpp"
#include "mutex/registry.hpp"
#include "mutex/safety_monitor.hpp"
#include "net/delay_model.hpp"
#include "obs/sinks.hpp"
#include "obs/tracer.hpp"
#include "runtime/cluster.hpp"

namespace dmx::testbed {

struct MutexCluster {
  std::shared_ptr<obs::MemorySink> sink;
  std::unique_ptr<runtime::Cluster> cluster;
  mutex::SafetyMonitor monitor;
  mutex::RequestIdSource ids;
  std::vector<mutex::MutexAlgorithm*> algos;
  std::vector<std::unique_ptr<mutex::CsDriver>> drivers;

  /// Build an N-node cluster of the named registered algorithm.  Pass a
  /// ReliableTransportConfig to interpose the sliding-window transport
  /// beneath every process (defaults are scaled to t_msg).
  MutexCluster(const std::string& algorithm, std::size_t n,
               const mutex::ParamSet& params, double t_msg = 0.1,
               double t_exec = 0.1, std::uint64_t seed = 1,
               std::optional<net::ReliableTransportConfig> reliable =
                   std::nullopt)
      : sink(std::make_shared<obs::MemorySink>()) {
    harness::register_builtin_algorithms();
    cluster = std::make_unique<runtime::Cluster>(
        n, std::make_unique<net::ConstantDelay>(sim::SimTime::units(t_msg)),
        seed, obs::Tracer(sink));
    if (reliable) cluster->use_reliable_transport(*reliable);
    for (std::size_t i = 0; i < n; ++i) {
      const net::NodeId nid{static_cast<std::int32_t>(i)};
      mutex::FactoryContext ctx{nid, n, params};
      auto algo = mutex::Registry::instance().create(algorithm, ctx);
      algos.push_back(algo.get());
      cluster->install(nid, std::move(algo));
      drivers.push_back(std::make_unique<mutex::CsDriver>(
          cluster->simulator(), *algos.back(), sim::SimTime::units(t_exec),
          &monitor, &ids));
      drivers.back()->set_tracer(obs::Tracer(sink));
    }
    cluster->start();
  }

  sim::Simulator& sim() { return cluster->simulator(); }
  net::Network& network() { return cluster->network(); }

  core::ArbiterMutex& arbiter(std::size_t i) {
    return *dynamic_cast<core::ArbiterMutex*>(algos[i]);
  }

  /// Submit a CS demand at node i at absolute sim time t.
  void submit_at(double t, std::size_t i, int priority = 0) {
    sim().schedule_at(sim::SimTime::units(t),
                      [this, i, priority] { drivers[i]->submit(priority); });
  }

  void crash_at(double t, std::size_t i) {
    sim().schedule_at(sim::SimTime::units(t), [this, i] {
      cluster->crash_node(net::NodeId{static_cast<std::int32_t>(i)});
      drivers[i]->on_node_crashed();
    });
  }

  void restart_at(double t, std::size_t i) {
    sim().schedule_at(sim::SimTime::units(t), [this, i] {
      cluster->restart_node(net::NodeId{static_cast<std::int32_t>(i)});
    });
  }

  [[nodiscard]] std::uint64_t total_completed() const {
    std::uint64_t c = 0;
    for (const auto& d : drivers) c += d->completed();
    return c;
  }

  [[nodiscard]] std::uint64_t total_submitted() const {
    std::uint64_t c = 0;
    for (const auto& d : drivers) c += d->submitted();
    return c;
  }

  core::ArbiterStats protocol_stats() {
    core::ArbiterStats s;
    for (auto* a : algos) {
      if (auto* arb = dynamic_cast<core::ArbiterMutex*>(a)) {
        s.merge(arb->protocol_stats());
      }
    }
    return s;
  }
};

}  // namespace dmx::testbed
