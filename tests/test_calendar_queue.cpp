// Tests for the calendar-queue pending-event set, including an equivalence
// check against std::priority_queue over random workloads.
#include <gtest/gtest.h>

#include <queue>
#include <vector>

#include "sim/calendar_queue.hpp"
#include "sim/rng.hpp"

namespace dmx::sim {
namespace {

TEST(CalendarQueue, EmptyAndBasicOrder) {
  CalendarQueue q;
  EXPECT_TRUE(q.empty());
  q.push({SimTime::units(3.0), 1, 10});
  q.push({SimTime::units(1.0), 2, 11});
  q.push({SimTime::units(2.0), 3, 12});
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop().id, 11u);
  EXPECT_EQ(q.pop().id, 12u);
  EXPECT_EQ(q.pop().id, 10u);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, FifoTieBreakOnEqualTimes) {
  CalendarQueue q;
  for (std::uint64_t s = 0; s < 20; ++s) {
    q.push({SimTime::units(1.0), s, 100 + s});
  }
  for (std::uint64_t s = 0; s < 20; ++s) {
    EXPECT_EQ(q.pop().seq, s);
  }
}

TEST(CalendarQueue, TopDoesNotRemove) {
  CalendarQueue q;
  q.push({SimTime::units(5.0), 1, 7});
  EXPECT_EQ(q.top().id, 7u);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.pop().id, 7u);
}

TEST(CalendarQueue, Validation) {
  EXPECT_THROW(CalendarQueue(SimTime::zero()), std::invalid_argument);
  EXPECT_THROW(CalendarQueue(SimTime::units(0.1), 0), std::invalid_argument);
  CalendarQueue q;
  EXPECT_THROW(q.push({SimTime::units(-1.0), 0, 0}), std::invalid_argument);
  EXPECT_THROW((void)q.pop(), std::logic_error);
}

TEST(CalendarQueue, ResizesThroughGrowthAndShrink) {
  CalendarQueue q(SimTime::units(0.1), 16);
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    q.push({SimTime::units(static_cast<double>(i % 977) * 0.01), i, i});
  }
  SimTime last = SimTime::zero();
  for (std::uint64_t i = 0; i < 10'000; ++i) {
    const auto e = q.pop();
    EXPECT_GE(e.time, last);
    last = e.time;
  }
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, MatchesPriorityQueueOnRandomWorkload) {
  struct HeapCmp {
    bool operator()(const CalendarQueue::Entry& a,
                    const CalendarQueue::Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  CalendarQueue cal(SimTime::units(0.05), 8);
  std::priority_queue<CalendarQueue::Entry, std::vector<CalendarQueue::Entry>,
                      HeapCmp>
      heap;
  Rng rng(99);
  std::uint64_t seq = 0;
  double now = 0.0;
  // Interleaved pushes and pops mimicking a simulation's hold model.
  for (int step = 0; step < 20'000; ++step) {
    if (heap.empty() || rng.chance(0.55)) {
      const CalendarQueue::Entry e{SimTime::units(now + rng.uniform(0.0, 3.0)),
                                   seq, seq};
      ++seq;
      cal.push(e);
      heap.push(e);
    } else {
      ASSERT_FALSE(cal.empty());
      const auto a = cal.pop();
      const auto b = heap.top();
      heap.pop();
      ASSERT_EQ(a.id, b.id) << "diverged at step " << step;
      now = a.time.to_units();
    }
  }
  while (!heap.empty()) {
    ASSERT_EQ(cal.pop().id, heap.top().id);
    heap.pop();
  }
  EXPECT_TRUE(cal.empty());
}

}  // namespace
}  // namespace dmx::sim
