// Algorithm-specific tests for the seven baselines (beyond the generic
// safety/liveness sweep in test_properties.cpp).
#include <gtest/gtest.h>

#include "baselines/maekawa.hpp"
#include "baselines/path_reversal.hpp"
#include "baselines/raymond.hpp"
#include "baselines/singhal_dynamic.hpp"
#include "baselines/suzuki_kasami.hpp"
#include "baselines/token_ring.hpp"
#include "testbed.hpp"

namespace dmx::baselines {
namespace {

using testbed::MutexCluster;

mutex::ParamSet no_params() { return mutex::ParamSet{}; }

// --- centralized -------------------------------------------------------------

TEST(Centralized, ExactlyThreeMessagesPerRemoteCs) {
  MutexCluster tb("centralized", 4, no_params());
  tb.submit_at(0.0, 2);
  tb.sim().run();
  EXPECT_EQ(tb.total_completed(), 1u);
  EXPECT_EQ(tb.network().stats().sent, 3u);  // C-REQUEST, C-GRANT, C-RELEASE
}

TEST(Centralized, CoordinatorSelfRequestIsFree) {
  MutexCluster tb("centralized", 4, no_params());
  tb.submit_at(0.0, 0);
  tb.sim().run();
  EXPECT_EQ(tb.total_completed(), 1u);
  EXPECT_EQ(tb.network().stats().sent, 0u);
}

TEST(Centralized, FcfsAcrossNodes) {
  MutexCluster tb("centralized", 4, no_params());
  std::vector<int> order;
  for (std::size_t i = 0; i < 4; ++i) {
    tb.drivers[i]->set_completion_callback(
        [&order, i](const mutex::CsRequest&) {
          order.push_back(static_cast<int>(i));
        });
  }
  tb.submit_at(0.00, 3);
  tb.submit_at(0.01, 1);
  tb.submit_at(0.02, 2);
  tb.sim().run();
  EXPECT_EQ(order, (std::vector<int>{3, 1, 2}));
}

// --- Suzuki–Kasami -----------------------------------------------------------

TEST(SuzukiKasami, IdleHolderReentersForFree) {
  MutexCluster tb("suzuki-kasami", 5, no_params());
  tb.submit_at(0.0, 0);  // node 0 holds the initial token
  tb.sim().run();
  EXPECT_EQ(tb.total_completed(), 1u);
  EXPECT_EQ(tb.network().stats().sent, 0u);
}

TEST(SuzukiKasami, RemoteRequestCostsNMessages) {
  MutexCluster tb("suzuki-kasami", 5, no_params());
  tb.submit_at(0.0, 3);
  tb.sim().run();
  EXPECT_EQ(tb.total_completed(), 1u);
  // N-1 broadcast REQUESTs + 1 token.
  EXPECT_EQ(tb.network().stats().sent, 5u);
  auto* sk = dynamic_cast<SuzukiKasamiMutex*>(tb.algos[3]);
  ASSERT_NE(sk, nullptr);
  EXPECT_TRUE(sk->has_token());  // token stays with the last user
}

TEST(SuzukiKasami, OutdatedRequestsIgnored) {
  // A node that already executed must not be granted again off a stale
  // request: drive two rounds and count exactly 2 completions.
  MutexCluster tb("suzuki-kasami", 3, no_params());
  tb.submit_at(0.0, 1);
  tb.submit_at(5.0, 1);
  tb.sim().run();
  EXPECT_EQ(tb.drivers[1]->completed(), 2u);
  EXPECT_EQ(tb.monitor.violations(), 0u);
}

// --- Raymond ----------------------------------------------------------------

TEST(Raymond, TokenMovesAlongTreeEdgesOnly) {
  MutexCluster tb("raymond", 7, no_params());
  // Node 6 is a leaf (parent 2, grandparent 0).  Its request must pull the
  // token down the path 0 -> 2 -> 6: 2 REQUEST hops + 2 PRIVILEGE hops.
  tb.submit_at(0.0, 6);
  tb.sim().run();
  EXPECT_EQ(tb.total_completed(), 1u);
  const auto by_type = tb.network().stats().sent_by_type();
  EXPECT_EQ(by_type.get("RY-REQUEST"), 2u);
  EXPECT_EQ(by_type.get("RY-PRIVILEGE"), 2u);
  auto* leaf = dynamic_cast<RaymondMutex*>(tb.algos[6]);
  ASSERT_NE(leaf, nullptr);
  EXPECT_TRUE(leaf->holds_token().value_or(false));
}

TEST(Raymond, RootSelfRequestIsFree) {
  MutexCluster tb("raymond", 7, no_params());
  tb.submit_at(0.0, 0);
  tb.sim().run();
  EXPECT_EQ(tb.total_completed(), 1u);
  EXPECT_EQ(tb.network().stats().sent, 0u);
}

TEST(Raymond, HighLoadApproachesFourMessages) {
  harness::ExperimentConfig cfg;
  cfg.algorithm = "raymond";
  cfg.n_nodes = 10;
  cfg.lambda = 5.0;
  cfg.total_requests = 10'000;
  cfg.seed = 12;
  const auto r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.drained);
  EXPECT_NEAR(r.messages_per_cs, 4.0, 0.8);  // the paper's "approximately 4"
}

// --- Naimi–Trehel path reversal ---------------------------------------------

TEST(PathReversal, RootSelfRequestIsFree) {
  MutexCluster tb("path-reversal", 5, no_params());
  tb.submit_at(0.0, 0);  // node 0 starts as root holding the token
  tb.sim().run();
  EXPECT_EQ(tb.total_completed(), 1u);
  EXPECT_EQ(tb.network().stats().sent, 0u);
}

TEST(PathReversal, FirstRemoteRequestIsTwoMessages) {
  MutexCluster tb("path-reversal", 5, no_params());
  tb.submit_at(0.0, 3);  // everyone initially points straight at node 0
  tb.sim().run();
  EXPECT_EQ(tb.total_completed(), 1u);
  const auto by_type = tb.network().stats().sent_by_type();
  EXPECT_EQ(by_type.get("PR-REQUEST"), 1u);
  EXPECT_EQ(by_type.get("PR-TOKEN"), 1u);
  auto* requester = dynamic_cast<PathReversalMutex*>(tb.algos[3]);
  ASSERT_NE(requester, nullptr);
  EXPECT_TRUE(requester->is_root());
  EXPECT_TRUE(requester->holds_token().value_or(false));
}

TEST(PathReversal, PathReversalCollapsesTheChain) {
  // Serial requests 1, 2, 3, then 0 again.  Every REQUEST that crosses
  // node 0 re-points it at the requester, so the chain through 0 never
  // grows beyond one interior hop, and node 0's own climb at the end goes
  // straight to the current root:
  //   by 1: 1 REQ + 1 TOK   (0 idle root hands over directly)
  //   by 2: 2 REQ + 1 TOK   (0 forwards to 1, the reversed owner)
  //   by 3: 2 REQ + 1 TOK   (0 forwards to 2)
  //   by 0: 1 REQ + 1 TOK   (0 already re-pointed at 3 by the reversal)
  MutexCluster tb("path-reversal", 4, no_params());
  tb.submit_at(0.0, 1);
  tb.submit_at(1.0, 2);
  tb.submit_at(2.0, 3);
  tb.submit_at(3.0, 0);
  tb.sim().run();
  EXPECT_EQ(tb.total_completed(), 4u);
  const auto by_type = tb.network().stats().sent_by_type();
  EXPECT_EQ(by_type.get("PR-REQUEST"), 6u);
  EXPECT_EQ(by_type.get("PR-TOKEN"), 4u);
  auto* last = dynamic_cast<PathReversalMutex*>(tb.algos[0]);
  ASSERT_NE(last, nullptr);
  EXPECT_TRUE(last->is_root());
  EXPECT_TRUE(last->holds_token().value_or(false));
}

TEST(PathReversal, ConcurrentRequestersChainViaNext) {
  // Simultaneous requests: the busy root queues one requester in its next
  // slot and the token hops along the distributed FIFO — still exactly one
  // TOKEN message per remote grant.
  MutexCluster tb("path-reversal", 4, no_params());
  tb.submit_at(0.0, 1);
  tb.submit_at(0.0, 2);
  tb.submit_at(0.0, 3);
  tb.sim().run();
  EXPECT_EQ(tb.total_completed(), 3u);
  EXPECT_EQ(tb.network().stats().sent_by_type().get("PR-TOKEN"), 3u);
}

TEST(PathReversal, LightLoadMatchesLavaultAverage) {
  harness::ExperimentConfig cfg;
  cfg.algorithm = "path-reversal";
  cfg.n_nodes = 10;
  cfg.lambda = 0.01;
  cfg.total_requests = 10'000;
  cfg.seed = 12;
  const auto r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.drained);
  // Lavault: H_10 - 1/10 = 2.829 messages/CS under uniform random request.
  EXPECT_NEAR(r.messages_per_cs, 2.829, 0.25);
}

// --- Maekawa ----------------------------------------------------------------

TEST(Maekawa, GridQuorumsPairwiseIntersect) {
  for (std::size_t n : {2u, 3u, 4u, 7u, 9u, 10u, 13u, 16u, 20u, 25u}) {
    const auto quorums = build_grid_quorums(n);
    ASSERT_EQ(quorums.size(), n);
    for (std::size_t a = 0; a < n; ++a) {
      // Every node is in its own quorum.
      EXPECT_NE(std::find(quorums[a].begin(), quorums[a].end(),
                          net::NodeId{static_cast<std::int32_t>(a)}),
                quorums[a].end());
      for (std::size_t b = a + 1; b < n; ++b) {
        bool intersect = false;
        for (net::NodeId x : quorums[a]) {
          if (std::find(quorums[b].begin(), quorums[b].end(), x) !=
              quorums[b].end()) {
            intersect = true;
            break;
          }
        }
        EXPECT_TRUE(intersect) << "N=" << n << " quorums " << a << "," << b;
      }
    }
  }
}

TEST(Maekawa, QuorumSizeIsOrderSqrtN) {
  const auto quorums = build_grid_quorums(16);
  for (const auto& q : quorums) {
    EXPECT_EQ(q.size(), 7u);  // row(4) + col(4) - self counted once
  }
}

TEST(Maekawa, UncontendedCostIsThreeRoundsOverQuorum) {
  MutexCluster tb("maekawa", 9, no_params());
  tb.submit_at(0.0, 4);  // quorum of 4 in a 3x3 grid: {3,4,5} ∪ {1,4,7}
  tb.sim().run();
  EXPECT_EQ(tb.total_completed(), 1u);
  // 4 remote members: REQUEST+LOCKED+RELEASE each (self-votes are free).
  EXPECT_EQ(tb.network().stats().sent, 12u);
}

TEST(Maekawa, HighContentionStormsResolve) {
  // All nodes hammer simultaneously repeatedly; the FAILED/INQUIRE/YIELD
  // machinery must keep resolving priority inversions.
  MutexCluster tb("maekawa", 9, no_params());
  for (int round = 0; round < 20; ++round) {
    for (std::size_t i = 0; i < 9; ++i) {
      tb.submit_at(0.01 * static_cast<double>(i % 3), i);
    }
  }
  tb.sim().run_until(sim::SimTime::units(2'000.0));
  EXPECT_EQ(tb.total_completed(), 180u);
  EXPECT_EQ(tb.monitor.violations(), 0u);
}

// --- Singhal dynamic ----------------------------------------------------------

TEST(Singhal, StaircaseInitialization) {
  MutexCluster tb("singhal", 6, no_params());
  for (std::size_t i = 0; i < 6; ++i) {
    auto* s = dynamic_cast<SinghalDynamicMutex*>(tb.algos[i]);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->request_set_size(), i) << "node " << i;
  }
}

TEST(Singhal, LowestNodeEntersFreeWhenColdAndIdle) {
  MutexCluster tb("singhal", 6, no_params());
  tb.submit_at(0.0, 0);  // empty request set: enters immediately
  tb.sim().run();
  EXPECT_EQ(tb.total_completed(), 1u);
  EXPECT_EQ(tb.network().stats().sent, 0u);
}

TEST(Singhal, RequestSetsShrinkAtLowLoad) {
  harness::ExperimentConfig cfg;
  cfg.algorithm = "singhal";
  cfg.n_nodes = 10;
  cfg.lambda = 0.005;
  cfg.total_requests = 5'000;
  cfg.seed = 3;
  const auto r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.drained);
  // Well under Ricart–Agrawala's 18 at N=10; the dynamic structure pays off.
  EXPECT_LT(r.messages_per_cs, 12.0);
}

TEST(Singhal, ConcurrentColdStartIsSafe) {
  MutexCluster tb("singhal", 6, no_params());
  for (std::size_t i = 0; i < 6; ++i) tb.submit_at(0.0, i);
  tb.sim().run();
  EXPECT_EQ(tb.total_completed(), 6u);
  EXPECT_EQ(tb.monitor.violations(), 0u);
}

// --- Lamport & Ricart–Agrawala ordering ---------------------------------------

TEST(Lamport, TimestampOrderRespected) {
  MutexCluster tb("lamport", 4, no_params());
  std::vector<int> order;
  for (std::size_t i = 0; i < 4; ++i) {
    tb.drivers[i]->set_completion_callback(
        [&order, i](const mutex::CsRequest&) {
          order.push_back(static_cast<int>(i));
        });
  }
  tb.submit_at(0.0, 2);
  tb.submit_at(1.0, 1);  // strictly later timestamp
  tb.sim().run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(RicartAgrawala, SimultaneousRequestsTieBreakByNodeId) {
  MutexCluster tb("ricart-agrawala", 4, no_params());
  std::vector<int> order;
  for (std::size_t i = 0; i < 4; ++i) {
    tb.drivers[i]->set_completion_callback(
        [&order, i](const mutex::CsRequest&) {
          order.push_back(static_cast<int>(i));
        });
  }
  tb.submit_at(0.0, 3);
  tb.submit_at(0.0, 1);  // identical clocks: lower id wins
  tb.sim().run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(RicartAgrawala, SingleNodeClusterDegenerate) {
  MutexCluster tb("ricart-agrawala", 1, no_params());
  tb.submit_at(0.0, 0);
  tb.sim().run();
  EXPECT_EQ(tb.total_completed(), 1u);
  EXPECT_EQ(tb.network().stats().sent, 0u);
}

}  // namespace
}  // namespace dmx::baselines

// --- token ring (paper reference [15]) -----------------------------------------

namespace dmx::baselines {
namespace {

TEST(TokenRing, SaturationCostsOneHopPerCs) {
  harness::ExperimentConfig cfg;
  cfg.algorithm = "token-ring";
  cfg.n_nodes = 10;
  cfg.lambda = 5.0;
  cfg.total_requests = 10'000;
  cfg.seed = 2;
  const auto r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.safety_violations, 0u);
  EXPECT_LT(r.messages_per_cs, 1.5);  // ~1 token hop per CS
}

TEST(TokenRing, ParksAfterQuietRevolutionAndWakes) {
  testbed::MutexCluster tb("token-ring", 5, mutex::ParamSet{});
  tb.submit_at(0.0, 2);
  tb.sim().run();
  EXPECT_EQ(tb.total_completed(), 1u);
  // The token must end up parked somewhere (the run drained).
  int parked = 0;
  for (auto* a : tb.algos) {
    if (dynamic_cast<TokenRingMutex*>(a)->parked()) ++parked;
  }
  EXPECT_EQ(parked, 1);
  // A later request on the far side of the ring wakes it.
  tb.submit_at(100.0, 4);
  tb.sim().run();
  EXPECT_EQ(tb.total_completed(), 2u);
  EXPECT_EQ(tb.monitor.violations(), 0u);
}

TEST(TokenRing, HolderOfParkedTokenEntersFree) {
  testbed::MutexCluster tb("token-ring", 5, mutex::ParamSet{});
  tb.submit_at(0.0, 0);  // token starts parked at node 0
  tb.sim().run();
  EXPECT_EQ(tb.total_completed(), 1u);
  EXPECT_EQ(tb.network().stats().sent_by_type().get("RING-WAKEUP"), 0u);
}

}  // namespace
}  // namespace dmx::baselines

// --- tree quorums (paper reference [1], Agrawal–El Abbadi style) ---------------

namespace dmx::baselines {
namespace {

TEST(TreeQuorum, AllQuorumsShareTheRootAndIntersect) {
  for (std::size_t n : {3u, 7u, 10u, 15u, 31u}) {
    const auto quorums = build_tree_quorums(n);
    ASSERT_EQ(quorums.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      // Root membership and self membership.
      EXPECT_NE(std::find(quorums[i].begin(), quorums[i].end(), net::NodeId{0}),
                quorums[i].end());
      EXPECT_NE(std::find(quorums[i].begin(), quorums[i].end(),
                          net::NodeId{static_cast<std::int32_t>(i)}),
                quorums[i].end());
    }
  }
}

TEST(TreeQuorum, QuorumSizeIsLogarithmic) {
  const auto quorums = build_tree_quorums(31);  // complete tree, depth 5
  for (const auto& q : quorums) {
    EXPECT_LE(q.size(), 5u);
    EXPECT_GE(q.size(), 1u);
  }
}

TEST(TreeQuorum, CheaperThanGridAtScale) {
  harness::ExperimentConfig grid, tree;
  grid.algorithm = "maekawa";
  tree.algorithm = "tree-quorum";
  for (auto* cfg : {&grid, &tree}) {
    cfg->n_nodes = 15;
    cfg->lambda = 0.05;
    cfg->total_requests = 3'000;
    cfg->seed = 6;
  }
  const auto rg = harness::run_experiment(grid);
  const auto rt = harness::run_experiment(tree);
  EXPECT_TRUE(rg.drained);
  EXPECT_TRUE(rt.drained);
  EXPECT_EQ(rg.safety_violations + rt.safety_violations, 0u);
  // O(log N) quorums beat O(sqrt N) ones on message count.
  EXPECT_LT(rt.messages_per_cs, rg.messages_per_cs);
}

TEST(TreeQuorum, SafeUnderContention) {
  harness::ExperimentConfig cfg;
  cfg.algorithm = "tree-quorum";
  cfg.n_nodes = 7;
  cfg.lambda = 2.0;
  cfg.total_requests = 4'000;
  cfg.seed = 44;
  const auto r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.safety_violations, 0u);
}

}  // namespace
}  // namespace dmx::baselines
