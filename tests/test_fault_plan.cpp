// Chaos campaign engine: fault-plan parsing, single-counted drop
// adjudication, one-shot observability and cancellation, campaign execution
// against a live cluster, recovery metrics, the progress/liveness monitor,
// and end-to-end campaign runs through the experiment harness.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fault/campaign.hpp"
#include "fault/fault_plan.hpp"
#include "mutex/progress_monitor.hpp"
#include "net/network.hpp"
#include "stats/recovery_metrics.hpp"
#include "testbed.hpp"

namespace dmx {
namespace {

using fault::FaultAction;
using fault::FaultPlan;

// ---------------------------------------------------------------- parsing

TEST(FaultPlanParse, RoundTripsEveryVerb) {
  const std::string spec =
      "t=5 crash 3; t=9 restart 3; t=12 lose-next PRIVILEGE from=1 to=2; "
      "t=15 loss REQUEST=0.25 until=20; t=21 loss *=0.1; "
      "t=30 partition 0,1,2|3,4; t=40 heal";
  const FaultPlan plan = FaultPlan::parse(spec);
  ASSERT_EQ(plan.size(), 7u);
  EXPECT_EQ(FaultPlan::parse(plan.to_string()).to_string(), plan.to_string());
}

TEST(FaultPlanParse, FieldsOfEachAction) {
  const FaultPlan plan = FaultPlan::parse(
      "t=5 crash 3; t=12 lose-next PRIVILEGE from=1 to=2; "
      "t=15 loss REQUEST=0.25 until=20; t=30 partition 0,1|2");
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_EQ(plan.actions[0].kind, FaultAction::Kind::kCrash);
  EXPECT_EQ(plan.actions[0].at, 5.0);
  EXPECT_EQ(plan.actions[0].node, 3);
  EXPECT_EQ(plan.actions[1].kind, FaultAction::Kind::kLoseNext);
  EXPECT_EQ(plan.actions[1].msg_type, "PRIVILEGE");
  EXPECT_EQ(plan.actions[1].src, 1);
  EXPECT_EQ(plan.actions[1].dst, 2);
  EXPECT_EQ(plan.actions[2].kind, FaultAction::Kind::kSetLoss);
  EXPECT_EQ(plan.actions[2].probability, 0.25);
  EXPECT_EQ(plan.actions[2].until, 20.0);
  EXPECT_EQ(plan.actions[3].kind, FaultAction::Kind::kPartition);
  ASSERT_EQ(plan.actions[3].groups.size(), 2u);
  EXPECT_EQ(plan.actions[3].groups[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(plan.actions[3].groups[1], (std::vector<int>{2}));
}

TEST(FaultPlanParse, SortsByTimeStably) {
  const FaultPlan plan =
      FaultPlan::parse("t=9 restart 1; t=2 crash 1; t=9 heal");
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.actions[0].kind, FaultAction::Kind::kCrash);
  // Equal times keep spec order: restart before heal.
  EXPECT_EQ(plan.actions[1].kind, FaultAction::Kind::kRestart);
  EXPECT_EQ(plan.actions[2].kind, FaultAction::Kind::kHeal);
}

TEST(FaultPlanParse, EmptySpecAndBlankSegments) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan::parse(" ;  ; ").empty());
  EXPECT_EQ(FaultPlan::parse("t=1 heal; ; t=2 heal").size(), 2u);
}

TEST(FaultPlanParse, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("crash 3"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("t=5 explode 3"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("t=5 crash"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("t=5 crash x"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("t=5 loss REQUEST=1.5"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("t=5 loss REQUEST=0.1 until=5"),
               std::invalid_argument);  // window must end after it opens
  EXPECT_THROW(FaultPlan::parse("t=5 partition"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("t=5 crash 3 junk"), std::invalid_argument);
}

TEST(FaultPlanParse, UnknownMessageTypeIsNotAParseError) {
  // The registry may not be populated at parse time; the CampaignRunner
  // validates type names at start().
  EXPECT_EQ(FaultPlan::parse("t=5 lose-next NO-SUCH-TYPE").size(), 1u);
}

TEST(FaultPlanParse, DisruptiveClassification) {
  const FaultPlan plan = FaultPlan::parse(
      "t=1 crash 0; t=2 restart 0; t=3 lose-next PRIVILEGE; "
      "t=4 loss *=0.5; t=5 loss *=0; t=6 partition 0|1; t=7 heal");
  ASSERT_EQ(plan.size(), 7u);
  EXPECT_TRUE(plan.actions[0].disruptive());   // crash
  EXPECT_FALSE(plan.actions[1].disruptive());  // restart heals
  EXPECT_TRUE(plan.actions[2].disruptive());   // lose-next
  EXPECT_TRUE(plan.actions[3].disruptive());   // loss p > 0
  EXPECT_FALSE(plan.actions[4].disruptive());  // loss p == 0 heals
  EXPECT_TRUE(plan.actions[5].disruptive());   // partition
  EXPECT_FALSE(plan.actions[6].disruptive());  // heal
}

TEST(FaultPlanParse, DupNextRoundTripsAndClassifies) {
  const FaultPlan plan = FaultPlan::parse(
      "t=3 dup-next PRIVILEGE; t=7 dup-next REQUEST from=1 to=0");
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.actions[0].kind, FaultAction::Kind::kDupNext);
  EXPECT_EQ(plan.actions[0].msg_type, "PRIVILEGE");
  EXPECT_EQ(plan.actions[1].src, 1);
  EXPECT_EQ(plan.actions[1].dst, 0);
  // Duplication never opens a recovery window: the dedup layer (or an
  // idempotent handler) absorbs the extra copy without losing progress.
  EXPECT_FALSE(plan.actions[0].disruptive());
  EXPECT_EQ(FaultPlan::parse(plan.to_string()).to_string(), plan.to_string());
  EXPECT_THROW(FaultPlan::parse("t=3 dup-next"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("t=3 dup-next PRIVILEGE from=x"),
               std::invalid_argument);
}

TEST(FaultPlanParse, ReorderWindowRoundTripsAndValidates) {
  const FaultPlan plan =
      FaultPlan::parse("reorder-window t=2..8; t=1 loss *=0.1");
  ASSERT_EQ(plan.size(), 2u);
  // Sorted by start time: the loss action at t=1 comes first.
  EXPECT_EQ(plan.actions[0].kind, FaultAction::Kind::kSetLoss);
  EXPECT_EQ(plan.actions[1].kind, FaultAction::Kind::kReorderWindow);
  EXPECT_EQ(plan.actions[1].at, 2.0);
  EXPECT_EQ(plan.actions[1].until, 8.0);
  EXPECT_TRUE(plan.actions[1].disruptive());
  EXPECT_EQ(FaultPlan::parse(plan.to_string()).to_string(), plan.to_string());

  EXPECT_THROW(FaultPlan::parse("reorder-window"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("reorder-window t=5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("reorder-window t=8..2"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("reorder-window t=5..5"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("reorder-window t=-1..5"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("reorder-window t=2..8 junk"),
               std::invalid_argument);
}

// ------------------------------------------- drop adjudication / counting

struct ChaosPing final : net::Msg<ChaosPing> {
  DMX_REGISTER_MESSAGE(ChaosPing, "CHAOS-PING");
};
struct ChaosPong final : net::Msg<ChaosPong> {
  DMX_REGISTER_MESSAGE(ChaosPong, "CHAOS-PONG");
};

class Recorder final : public net::MessageHandler {
 public:
  void on_message(const net::Envelope& env) override {
    received.push_back(env);
  }
  std::vector<net::Envelope> received;
};

class DropCountingTest : public ::testing::Test {
 protected:
  void make_net(std::size_t n) {
    net_ = std::make_unique<net::Network>(
        sim_, n,
        std::make_unique<net::ConstantDelay>(sim::SimTime::units(0.1)), 1);
    recorders_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      recorders_[i] = std::make_unique<Recorder>();
      net_->attach(net::NodeId{static_cast<std::int32_t>(i)},
                   recorders_[i].get());
    }
  }

  sim::Simulator sim_;
  std::unique_ptr<net::Network> net_;
  std::vector<std::unique_ptr<Recorder>> recorders_;
};

TEST_F(DropCountingTest, DownNodeBehindPartitionCountsExactlyOnce) {
  make_net(3);
  auto& f = net_->faults();
  f.set_node_down(net::NodeId{1}, true);
  f.set_partition({{net::NodeId{0}, net::NodeId{2}}, {net::NodeId{1}}});
  net_->send(net::NodeId{0}, net::NodeId{1}, net::make_payload<ChaosPing>());
  sim_.run();
  // One transmission, one drop, one cause — never double-counted even
  // though both the down node and the partition apply.
  EXPECT_EQ(f.dropped_count(), 1u);
  EXPECT_EQ(f.dropped_count(net::DropReason::kNodeDown), 1u);
  EXPECT_EQ(f.dropped_count(net::DropReason::kPartition), 0u);
  EXPECT_EQ(net_->stats().dropped, 1u);
  EXPECT_EQ(net_->stats().delivered, 0u);
}

TEST_F(DropCountingTest, PartitionAloneAttributedToPartition) {
  make_net(3);
  auto& f = net_->faults();
  f.set_partition({{net::NodeId{0}, net::NodeId{2}}, {net::NodeId{1}}});
  net_->send(net::NodeId{0}, net::NodeId{1}, net::make_payload<ChaosPing>());
  net_->send(net::NodeId{0}, net::NodeId{2}, net::make_payload<ChaosPing>());
  sim_.run();
  EXPECT_EQ(f.dropped_count(), 1u);
  EXPECT_EQ(f.dropped_count(net::DropReason::kPartition), 1u);
  EXPECT_EQ(recorders_[2]->received.size(), 1u);  // same-group traffic flows
}

TEST_F(DropCountingTest, CrashWhileInFlightCountsOnceAsNodeDown) {
  make_net(2);
  net_->send(net::NodeId{0}, net::NodeId{1}, net::make_payload<ChaosPing>());
  sim_.schedule_at(sim::SimTime::units(0.05), [this] {
    net_->faults().set_node_down(net::NodeId{1}, true);
  });
  sim_.run();
  // The send-time check passed; the delivery-time check catches the crash
  // and the injector's ledger still agrees with the network's.
  EXPECT_TRUE(recorders_[1]->received.empty());
  EXPECT_EQ(net_->faults().dropped_count(), 1u);
  EXPECT_EQ(net_->faults().dropped_count(net::DropReason::kNodeDown), 1u);
  EXPECT_EQ(net_->stats().dropped, 1u);
  EXPECT_EQ(net_->stats().delivered, 0u);
}

TEST_F(DropCountingTest, OneShotObservabilityFiredVersusPending) {
  make_net(2);
  auto& f = net_->faults();
  const auto ping_id = f.drop_next_of_type("CHAOS-PING");
  const auto pong_id = f.drop_next_of_type("CHAOS-PONG");
  EXPECT_EQ(f.one_shots_pending(), 2u);
  net_->send(net::NodeId{0}, net::NodeId{1}, net::make_payload<ChaosPing>());
  net_->send(net::NodeId{0}, net::NodeId{1}, net::make_payload<ChaosPing>());
  sim_.run();
  EXPECT_EQ(f.one_shots_fired(), 1u);
  EXPECT_EQ(f.one_shots_pending(), 1u);
  EXPECT_FALSE(f.one_shot_pending(ping_id));  // retired by the first PING
  EXPECT_TRUE(f.one_shot_pending(pong_id));   // no PONG ever sent
  EXPECT_EQ(f.dropped_count(net::DropReason::kOneShot), 1u);
  EXPECT_EQ(recorders_[1]->received.size(), 1u);  // second PING delivered
}

TEST_F(DropCountingTest, PendingCountCoversDuplicateOneShots) {
  make_net(2);
  auto& f = net_->faults();
  const auto dup_id = f.duplicate_next_of_type("CHAOS-PING");
  f.drop_next_of_type("CHAOS-PONG");
  // Both flavours of one-shot count as pending until they fire.
  EXPECT_EQ(f.one_shots_pending(), 2u);
  EXPECT_TRUE(f.one_shot_pending(dup_id));
  net_->send(net::NodeId{0}, net::NodeId{1}, net::make_payload<ChaosPing>());
  sim_.run();
  EXPECT_EQ(f.one_shots_pending(), 1u);  // The dup fired; the drop waits.
  EXPECT_FALSE(f.one_shot_pending(dup_id));
  EXPECT_EQ(f.duplicates_injected(), 1u);
  EXPECT_EQ(recorders_[1]->received.size(), 2u);  // Original + one copy.
}

TEST_F(DropCountingTest, CancelledOneShotNeverFires) {
  make_net(2);
  auto& f = net_->faults();
  const auto id = f.drop_next_of_type("CHAOS-PING");
  EXPECT_TRUE(f.cancel_one_shot(id));
  EXPECT_FALSE(f.cancel_one_shot(id));  // already gone
  EXPECT_FALSE(f.one_shot_pending(id));
  EXPECT_EQ(f.one_shots_pending(), 0u);
  net_->send(net::NodeId{0}, net::NodeId{1}, net::make_payload<ChaosPing>());
  sim_.run();
  EXPECT_EQ(f.one_shots_fired(), 0u);
  EXPECT_EQ(recorders_[1]->received.size(), 1u);
}

TEST_F(DropCountingTest, DoomedMessageDoesNotConsumeOneShot) {
  make_net(2);
  auto& f = net_->faults();
  f.set_node_down(net::NodeId{1}, true);
  f.drop_next_of_type("CHAOS-PING");
  net_->send(net::NodeId{0}, net::NodeId{1}, net::make_payload<ChaosPing>());
  sim_.run();
  // The message was already dead (down destination); the targeted drop
  // stays armed for a message it could actually affect.
  EXPECT_EQ(f.dropped_count(net::DropReason::kNodeDown), 1u);
  EXPECT_EQ(f.one_shots_fired(), 0u);
  EXPECT_EQ(f.one_shots_pending(), 1u);
}

// --------------------------------------------------------- campaign runner

mutex::ParamSet recovery_params() {
  mutex::ParamSet p;
  p.set("recovery", 1.0)
      .set("token_timeout", 3.0)
      .set("enquiry_timeout", 1.0)
      .set("arbiter_timeout", 6.0)
      .set("probe_timeout", 1.0)
      .set("resubmit_after_misses", 1.0)
      .set("request_retry_timeout", 5.0);
  return p;
}

TEST(CampaignRunner, ExecutesActionsOnScheduleWithHooksAndLog) {
  testbed::MutexCluster tb("arbiter-tp", 5, recovery_params());
  fault::CampaignRunner campaign(
      *tb.cluster, FaultPlan::parse("t=1 crash 3; t=4 restart 3"));
  std::vector<std::string> hook_calls;
  campaign.set_crash_hook([&](net::NodeId id) {
    hook_calls.push_back("crash " + std::to_string(id.index()));
    tb.drivers[id.index()]->on_node_crashed();
  });
  campaign.set_restart_hook([&](net::NodeId id) {
    hook_calls.push_back("restart " + std::to_string(id.index()));
  });
  std::vector<double> observed_at;
  campaign.set_observer([&](sim::SimTime t, const FaultAction&) {
    observed_at.push_back(t.to_units());
  });
  campaign.start();
  EXPECT_EQ(campaign.pending_actions(), 2u);
  tb.sim().run_until(sim::SimTime::units(2.0));
  EXPECT_TRUE(tb.network().faults().is_node_down(net::NodeId{3}));
  EXPECT_EQ(campaign.executed(), 1u);
  tb.sim().run_until(sim::SimTime::units(10.0));
  EXPECT_FALSE(tb.network().faults().is_node_down(net::NodeId{3}));
  EXPECT_EQ(campaign.executed(), 2u);
  EXPECT_EQ(campaign.pending_actions(), 0u);
  EXPECT_EQ(hook_calls, (std::vector<std::string>{"crash 3", "restart 3"}));
  EXPECT_EQ(observed_at, (std::vector<double>{1.0, 4.0}));
  ASSERT_EQ(campaign.log().size(), 2u);
  EXPECT_EQ(campaign.log()[0], "t=1 crash 3");
  EXPECT_EQ(campaign.log()[1], "t=4 restart 3");
}

TEST(CampaignRunner, ValidatesPlanAgainstClusterAndRegistry) {
  testbed::MutexCluster tb("arbiter-tp", 3, recovery_params());
  {
    fault::CampaignRunner bad_node(*tb.cluster,
                                   FaultPlan::parse("t=1 crash 7"));
    EXPECT_THROW(bad_node.start(), std::invalid_argument);
  }
  {
    fault::CampaignRunner bad_type(
        *tb.cluster, FaultPlan::parse("t=1 lose-next NO-SUCH-TYPE"));
    EXPECT_THROW(bad_type.start(), std::invalid_argument);
  }
  {
    fault::CampaignRunner bad_group(*tb.cluster,
                                    FaultPlan::parse("t=1 partition 0|1,5"));
    EXPECT_THROW(bad_group.start(), std::invalid_argument);
  }
  {
    tb.sim().schedule_at(sim::SimTime::units(2.0), [] {});
    tb.sim().run_until(sim::SimTime::units(3.0));
    fault::CampaignRunner in_past(*tb.cluster,
                                  FaultPlan::parse("t=1 crash 0"));
    EXPECT_THROW(in_past.start(), std::invalid_argument);
  }
}

TEST(CampaignRunner, CancelStopsPendingActions) {
  testbed::MutexCluster tb("arbiter-tp", 3, recovery_params());
  fault::CampaignRunner campaign(*tb.cluster,
                                 FaultPlan::parse("t=1 crash 1"));
  campaign.start();
  campaign.cancel();
  tb.sim().run_until(sim::SimTime::units(5.0));
  EXPECT_EQ(campaign.executed(), 0u);
  EXPECT_FALSE(tb.network().faults().is_node_down(net::NodeId{1}));
}

TEST(CampaignRunner, ReportsUnfiredTargetedDrops) {
  testbed::MutexCluster tb("arbiter-tp", 3, recovery_params());
  // ENQUIRY is registered but never sent in a healthy idle run.
  fault::CampaignRunner campaign(*tb.cluster,
                                 FaultPlan::parse("t=1 lose-next ENQUIRY"));
  campaign.start();
  tb.submit_at(2.0, 1);
  tb.sim().run_until(sim::SimTime::units(20.0));
  EXPECT_EQ(campaign.executed(), 1u);
  EXPECT_EQ(campaign.unfired_targeted_drops(), 1u);
  EXPECT_EQ(tb.total_completed(), 1u);
}

TEST(CampaignRunner, LossWindowRevertsAtUntil) {
  testbed::MutexCluster tb("arbiter-tp", 3, recovery_params());
  fault::CampaignRunner campaign(
      *tb.cluster,
      FaultPlan::parse("t=1 loss *=0.8 until=5; t=2 loss REQUEST=1 until=6"));
  campaign.start();
  auto& f = tb.network().faults();
  const auto request =
      net::MsgKindRegistry::instance().find("REQUEST");
  tb.sim().run_until(sim::SimTime::units(3.0));
  EXPECT_EQ(f.global_loss_probability(), 0.8);
  EXPECT_EQ(f.loss_probability(request), 1.0);  // per-kind overrides global
  tb.sim().run_until(sim::SimTime::units(5.5));
  EXPECT_EQ(f.global_loss_probability(), 0.0);  // window closed
  EXPECT_EQ(f.loss_probability(request), 1.0);  // per-kind window still open
  tb.sim().run_until(sim::SimTime::units(7.0));
  EXPECT_EQ(f.loss_probability(request), 0.0);  // reverted to global
}

// -------------------------------------------------------- recovery metrics

TEST(RecoveryMetrics, OverlappingWindowsAreSingleBilled) {
  stats::RecoveryMetrics m;
  m.on_fault(1.0, "a");
  m.on_fault(2.0, "b");
  m.on_progress(5.0);
  m.end_run(10.0);
  EXPECT_EQ(m.faults(), 2u);
  EXPECT_EQ(m.recovered(), 2u);
  EXPECT_EQ(m.unrecovered(), 0u);
  // One TTR sample per fault (4 and 3), but the union window is billed once.
  EXPECT_EQ(m.ttr().count(), 2u);
  EXPECT_DOUBLE_EQ(m.ttr().max(), 4.0);
  EXPECT_DOUBLE_EQ(m.unavailability(), 4.0);
}

TEST(RecoveryMetrics, UnrecoveredFaultIsCensoredNotSampled) {
  stats::RecoveryMetrics m;
  m.on_progress(0.5);  // progress with no open window is a no-op
  m.on_fault(1.0, "crash");
  m.end_run(4.0);
  EXPECT_EQ(m.faults(), 1u);
  EXPECT_EQ(m.recovered(), 0u);
  EXPECT_EQ(m.unrecovered(), 1u);
  EXPECT_EQ(m.ttr().count(), 0u);  // censored: no sample
  EXPECT_DOUBLE_EQ(m.unavailability(), 3.0);  // but the downtime is billed
  ASSERT_EQ(m.records().size(), 1u);
  EXPECT_FALSE(m.records()[0].recovered);
  EXPECT_EQ(m.records()[0].label, "crash");
}

// -------------------------------------------------------- progress monitor

TEST(ProgressMonitor, HealthyRunNeverStallsAndStopsPolling) {
  testbed::MutexCluster tb("arbiter-tp", 3, recovery_params());
  mutex::ProgressMonitor::Config cfg;
  cfg.stall_threshold = sim::SimTime::units(10.0);
  mutex::ProgressMonitor monitor(tb.sim(), cfg);
  for (std::size_t i = 0; i < 3; ++i) {
    monitor.watch(tb.drivers[i].get(), tb.algos[i]);
  }
  monitor.start();
  tb.submit_at(0.5, 1);
  tb.submit_at(1.0, 2);
  tb.sim().run();  // monitor stops polling once quiet: run() terminates
  EXPECT_FALSE(monitor.stalled());
  EXPECT_GE(monitor.checks_performed(), 1u);
  EXPECT_EQ(tb.total_completed(), 2u);
  EXPECT_LT(tb.sim().now().to_units(), 100.0);
}

TEST(ProgressMonitor, CrashedArbiterWithoutRecoveryIsDiagnosed) {
  // The deliberately broken plan: with recovery machinery off, nobody
  // monitors the epoch-1 arbiter.  The monitor must catch the stall and
  // name the dead node — instead of the run burning its backstop.
  mutex::ParamSet p;  // recovery off
  testbed::MutexCluster tb("arbiter-tp", 3, p);
  mutex::ProgressMonitor::Config cfg;
  cfg.stall_threshold = sim::SimTime::units(8.0);
  mutex::ProgressMonitor monitor(tb.sim(), cfg);
  for (std::size_t i = 0; i < 3; ++i) {
    monitor.watch(tb.drivers[i].get(), tb.algos[i]);
  }
  monitor.start();
  tb.crash_at(0.05, 0);
  tb.submit_at(0.5, 1);
  tb.sim().run_until(sim::SimTime::units(1'000.0));
  EXPECT_TRUE(monitor.stalled());
  // The simulator was stopped at the stall, far before the horizon.
  EXPECT_LT(tb.sim().now().to_units(), 100.0);
  EXPECT_NE(monitor.diagnosis().find("node 0: CRASHED"), std::string::npos);
  EXPECT_NE(monitor.diagnosis().find("demand-pending"), std::string::npos);
  EXPECT_NE(monitor.diagnosis().find("believes arbiter=0"),
            std::string::npos);
}

TEST(ProgressMonitor, DryEventQueueWithDemandIsAnImmediateStall) {
  // Centralized mutex, coordinator crashed: the client's demand can never
  // be served and no timer will ever fire — the event queue goes dry and
  // the monitor proves the stall at its next check without waiting out the
  // threshold.
  mutex::ParamSet p;
  testbed::MutexCluster tb("centralized", 3, p);
  mutex::ProgressMonitor::Config cfg;
  cfg.stall_threshold = sim::SimTime::units(1'000.0);
  cfg.check_interval = sim::SimTime::units(5.0);
  mutex::ProgressMonitor monitor(tb.sim(), cfg);
  for (std::size_t i = 0; i < 3; ++i) {
    monitor.watch(tb.drivers[i].get(), tb.algos[i]);
  }
  monitor.start();
  tb.crash_at(0.05, 0);  // the coordinator
  tb.submit_at(1.0, 2);
  tb.sim().run_until(sim::SimTime::units(10'000.0));
  EXPECT_TRUE(monitor.stalled());
  // Declared at a poll tick, orders of magnitude before the threshold.
  EXPECT_LT(monitor.stall_time().to_units(), 100.0);
}

// ------------------------------------------------- harness end-to-end

harness::ExperimentConfig campaign_config(const std::string& plan) {
  harness::ExperimentConfig cfg;
  cfg.algorithm = "arbiter-tp";
  cfg.n_nodes = 5;
  cfg.lambda = 0.3;
  cfg.seed = 42;
  cfg.total_requests = 300;
  cfg.params = recovery_params();
  cfg.fault_plan = plan;
  return cfg;
}

TEST(CampaignEndToEnd, CrashRestartCampaignRecoversAndMeasuresTtr) {
  const auto r =
      harness::run_experiment(campaign_config("t=20 crash 2; t=40 restart 2"));
  EXPECT_EQ(r.faults_injected, 1u);  // restart is a healing action
  EXPECT_EQ(r.faults_recovered, 1u);
  EXPECT_EQ(r.time_to_recovery.count(), 1u);
  EXPECT_GT(r.time_to_recovery.mean(), 0.0);
  EXPECT_GT(r.unavailability, 0.0);
  EXPECT_FALSE(r.stalled);
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.safety_violations, 0u);
  ASSERT_EQ(r.fault_log.size(), 2u);
  EXPECT_EQ(r.fault_log[0], "t=20 crash 2");
}

TEST(CampaignEndToEnd, TargetedDropCampaignFiresItsOneShot) {
  const auto r =
      harness::run_experiment(campaign_config("t=20 lose-next PRIVILEGE"));
  EXPECT_EQ(r.faults_injected, 1u);
  EXPECT_EQ(r.faults_recovered, 1u);
  EXPECT_EQ(r.unfired_targeted_drops, 0u);  // the drop actually hit
  EXPECT_TRUE(r.drained);
  EXPECT_GE(r.protocol.tokens_regenerated, 1u);
}

TEST(CampaignEndToEnd, BrokenPlanIsCaughtByTheMonitorNotTheBackstop) {
  auto cfg = campaign_config("t=0.05 crash 0");
  cfg.params = mutex::ParamSet{};  // recovery off: the plan is unsurvivable
  cfg.total_requests = 100;
  cfg.max_sim_units = 1e6;
  const auto r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.stalled);
  EXPECT_FALSE(r.drained);
  EXPECT_EQ(r.faults_recovered, 0u);
  EXPECT_GT(r.unavailability, 0.0);  // censored downtime is still billed
  // Stopped by the monitor's diagnosis, not the 1e6-unit backstop.
  EXPECT_LT(r.sim_duration_units, 1'000.0);
  EXPECT_NE(r.stall_diagnosis.find("node 0: CRASHED"), std::string::npos);
}

TEST(CampaignEndToEnd, SameSeedSamePlanIsIdentical) {
  const auto cfg =
      campaign_config("t=20 crash 2; t=30 lose-next REQUEST; t=40 restart 2");
  const auto a = harness::run_experiment(cfg);
  const auto b = harness::run_experiment(cfg);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.messages_total, b.messages_total);
  EXPECT_EQ(a.sim_events, b.sim_events);
  EXPECT_EQ(a.sim_duration_units, b.sim_duration_units);
  EXPECT_EQ(a.time_to_recovery.mean(), b.time_to_recovery.mean());
  EXPECT_EQ(a.unavailability, b.unavailability);
  EXPECT_EQ(a.fault_log, b.fault_log);
}

}  // namespace
}  // namespace dmx
