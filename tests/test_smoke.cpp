// End-to-end smoke tests: the arbiter algorithm under light/moderate/heavy
// load must be safe (no two nodes in CS), live (every submitted request is
// eventually served) and in the right message-count ballpark.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace dmx {
namespace {

harness::ExperimentConfig base_config() {
  harness::ExperimentConfig cfg;
  cfg.n_nodes = 10;
  cfg.t_msg = 0.1;
  cfg.t_exec = 0.1;
  cfg.params.set("t_req", 0.1).set("t_fwd", 0.1);
  cfg.total_requests = 5'000;
  cfg.seed = 1234;
  return cfg;
}

TEST(Smoke, LightLoadSafeAndLive) {
  auto cfg = base_config();
  cfg.lambda = 0.01;
  const auto r = harness::run_experiment(cfg);
  EXPECT_EQ(r.safety_violations, 0u);
  EXPECT_TRUE(r.drained) << "completed " << r.completed << " of "
                         << r.submitted;
  // Eq. (1): light load tends to (N^2-1)/N = 9.9 messages per CS.
  EXPECT_GT(r.messages_per_cs, 7.0);
  EXPECT_LT(r.messages_per_cs, 12.0);
}

TEST(Smoke, HeavyLoadSafeAndLiveAndCheap) {
  auto cfg = base_config();
  cfg.lambda = 10.0;
  const auto r = harness::run_experiment(cfg);
  EXPECT_EQ(r.safety_violations, 0u);
  EXPECT_TRUE(r.drained) << "completed " << r.completed << " of "
                         << r.submitted;
  // Eq. (4): heavy load tends to 3 - 2/N = 2.8 messages per CS.
  EXPECT_GT(r.messages_per_cs, 2.0);
  EXPECT_LT(r.messages_per_cs, 3.5);
}

TEST(Smoke, ModerateLoad) {
  auto cfg = base_config();
  cfg.lambda = 0.5;
  const auto r = harness::run_experiment(cfg);
  EXPECT_EQ(r.safety_violations, 0u);
  EXPECT_TRUE(r.drained);
  EXPECT_GT(r.messages_per_cs, 2.0);
  EXPECT_LT(r.messages_per_cs, 12.0);
}

}  // namespace
}  // namespace dmx
