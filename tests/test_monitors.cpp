// Structured-violation tests for the global monitors (satellite of the
// verification PR): SafetyMonitor must emit machine-readable Violation
// reports for overlapping holders and phantom exits, honor the
// collect/fail-fast policy split, and ProgressMonitor must turn a starved
// request into a structured kStarvation report naming the starving nodes.
#include <gtest/gtest.h>

#include <stdexcept>

#include "mutex/progress_monitor.hpp"
#include "mutex/safety_monitor.hpp"
#include "mutex/violation.hpp"
#include "testbed.hpp"

namespace dmx::mutex {
namespace {

TEST(SafetyMonitorReports, TwoHoldersYieldStructuredReport) {
  SafetyMonitor m(SafetyMonitor::Policy::kCollect);
  m.on_enter(net::NodeId{0}, sim::SimTime::units(1.0));
  m.on_enter(net::NodeId{2}, sim::SimTime::units(1.5));
  ASSERT_EQ(m.reports().size(), 1u);
  const Violation& v = m.reports().front();
  EXPECT_EQ(v.kind, Violation::Kind::kMutualExclusion);
  EXPECT_EQ(v.time, sim::SimTime::units(1.5));
  ASSERT_EQ(v.nodes.size(), 2u);
  EXPECT_EQ(v.nodes[0], net::NodeId{0});
  EXPECT_EQ(v.nodes[1], net::NodeId{2});
  // Collect policy keeps going: the run is not torn down.
  m.on_exit(net::NodeId{2}, sim::SimTime::units(2.0));
  EXPECT_EQ(m.violations(), 1u);
}

TEST(SafetyMonitorReports, PhantomExitYieldsStructuredReport) {
  SafetyMonitor m(SafetyMonitor::Policy::kCollect);
  m.on_exit(net::NodeId{3}, sim::SimTime::units(0.5));
  ASSERT_EQ(m.reports().size(), 1u);
  EXPECT_EQ(m.reports().front().kind, Violation::Kind::kPhantomExit);
  EXPECT_EQ(m.reports().front().nodes,
            std::vector<net::NodeId>{net::NodeId{3}});
}

TEST(SafetyMonitorReports, FailFastThrowsWithDescription) {
  SafetyMonitor m(SafetyMonitor::Policy::kFailFast);
  m.on_enter(net::NodeId{0}, sim::SimTime::units(1.0));
  try {
    m.on_enter(net::NodeId{1}, sim::SimTime::units(1.1));
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("mutual-exclusion"),
              std::string::npos);
  }
  // The report is recorded even on the throwing path.
  ASSERT_EQ(m.reports().size(), 1u);
  EXPECT_EQ(m.reports().front().kind, Violation::Kind::kMutualExclusion);
}

TEST(SafetyMonitorReports, ReportListIsCappedButCountingContinues) {
  SafetyMonitor m(SafetyMonitor::Policy::kCollect);
  // Alternate phantom exits: every one is a violation.
  for (std::size_t i = 0; i < SafetyMonitor::kMaxReports + 10; ++i) {
    m.on_exit(net::NodeId{0}, sim::SimTime::units(0.1 * double(i + 1)));
  }
  EXPECT_EQ(m.reports().size(), SafetyMonitor::kMaxReports);
  EXPECT_EQ(m.violations(), SafetyMonitor::kMaxReports + 10);
}

TEST(ProgressMonitorReports, StarvedRequestYieldsStructuredReport) {
  // Coordinator crashed before the client's demand: the request can never
  // be served, the event queue runs dry, and the monitor must produce a
  // structured kStarvation violation naming the starving node.
  mutex::ParamSet p;
  testbed::MutexCluster tb("centralized", 3, p);
  ProgressMonitor::Config cfg;
  cfg.stall_threshold = sim::SimTime::units(1'000.0);
  cfg.check_interval = sim::SimTime::units(5.0);
  ProgressMonitor monitor(tb.sim(), cfg);
  for (std::size_t i = 0; i < 3; ++i) {
    monitor.watch(tb.drivers[i].get(), tb.algos[i]);
  }
  monitor.start();
  tb.crash_at(0.05, 0);
  tb.submit_at(1.0, 2);
  tb.sim().run_until(sim::SimTime::units(10'000.0));
  ASSERT_TRUE(monitor.stalled());
  ASSERT_TRUE(monitor.violation().has_value());
  const Violation& v = *monitor.violation();
  EXPECT_EQ(v.kind, Violation::Kind::kStarvation);
  EXPECT_EQ(v.nodes, std::vector<net::NodeId>{net::NodeId{2}});
  EXPECT_NE(v.describe().find("starvation"), std::string::npos);
}

TEST(ProgressMonitorReports, HealthyRunHasNoViolation) {
  mutex::ParamSet p;
  testbed::MutexCluster tb("arbiter-tp", 3, p);
  ProgressMonitor::Config cfg;
  cfg.stall_threshold = sim::SimTime::units(10.0);
  ProgressMonitor monitor(tb.sim(), cfg);
  for (std::size_t i = 0; i < 3; ++i) {
    monitor.watch(tb.drivers[i].get(), tb.algos[i]);
  }
  monitor.start();
  tb.submit_at(0.5, 1);
  tb.sim().run();
  EXPECT_FALSE(monitor.stalled());
  EXPECT_FALSE(monitor.violation().has_value());
}

}  // namespace
}  // namespace dmx::mutex
