#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/delay_model.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace dmx::net {
namespace {

struct PingMsg final : Msg<PingMsg> {
  DMX_REGISTER_MESSAGE(PingMsg, "PING");
  int value;
  explicit PingMsg(int v) : value(v) {}
};

struct PongMsg final : Msg<PongMsg> {
  DMX_REGISTER_MESSAGE(PongMsg, "PONG");
};

/// Records every delivered envelope.
class Recorder final : public MessageHandler {
 public:
  void on_message(const Envelope& env) override { received.push_back(env); }
  std::vector<Envelope> received;
};

class NetworkTest : public ::testing::Test {
 protected:
  void attach_all(std::size_t n) {
    recorders_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      recorders_[i] = std::make_unique<Recorder>();
      net_->attach(NodeId{static_cast<std::int32_t>(i)}, recorders_[i].get());
    }
  }

  sim::Simulator sim_;
  std::unique_ptr<Network> net_;
  std::vector<std::unique_ptr<Recorder>> recorders_;
};

TEST_F(NetworkTest, DeliversAfterConstantDelay) {
  net_ = std::make_unique<Network>(
      sim_, 3, std::make_unique<ConstantDelay>(sim::SimTime::units(0.1)), 1);
  attach_all(3);
  net_->send(NodeId{0}, NodeId{2}, make_payload<PingMsg>(7));
  sim_.run();
  ASSERT_EQ(recorders_[2]->received.size(), 1u);
  const Envelope& env = recorders_[2]->received[0];
  EXPECT_EQ(env.src, NodeId{0});
  EXPECT_EQ(env.dst, NodeId{2});
  EXPECT_EQ(env.sent_at, sim::SimTime::zero());
  EXPECT_EQ(sim_.now(), sim::SimTime::units(0.1));
  ASSERT_NE(env.as<PingMsg>(), nullptr);
  EXPECT_EQ(env.as<PingMsg>()->value, 7);
  EXPECT_EQ(env.as<PongMsg>(), nullptr);
}

TEST_F(NetworkTest, SelfSendIsNearInstant) {
  net_ = std::make_unique<Network>(
      sim_, 2, std::make_unique<ConstantDelay>(sim::SimTime::units(0.5)), 1);
  attach_all(2);
  net_->send(NodeId{1}, NodeId{1}, make_payload<PongMsg>());
  sim_.run();
  ASSERT_EQ(recorders_[1]->received.size(), 1u);
  EXPECT_EQ(sim_.now(), sim::SimTime::ticks(1));
}

TEST_F(NetworkTest, BroadcastReachesAllButSender) {
  net_ = std::make_unique<Network>(
      sim_, 5, std::make_unique<ConstantDelay>(sim::SimTime::units(0.1)), 1);
  attach_all(5);
  net_->broadcast(NodeId{2}, make_payload<PongMsg>());
  sim_.run();
  EXPECT_TRUE(recorders_[2]->received.empty());
  for (std::size_t i = 0; i < 5; ++i) {
    if (i == 2) continue;
    EXPECT_EQ(recorders_[i]->received.size(), 1u) << "node " << i;
  }
  EXPECT_EQ(net_->stats().sent, 4u);
  EXPECT_EQ(net_->stats().delivered, 4u);
}

TEST_F(NetworkTest, PerTypeStatsCountTransmissions) {
  net_ = std::make_unique<Network>(
      sim_, 3, std::make_unique<ConstantDelay>(sim::SimTime::units(0.1)), 1);
  attach_all(3);
  net_->send(NodeId{0}, NodeId{1}, make_payload<PingMsg>(1));
  net_->broadcast(NodeId{0}, make_payload<PongMsg>());
  sim_.run();
  EXPECT_EQ(net_->stats().sent_by_type().get("PING"), 1u);
  EXPECT_EQ(net_->stats().sent_by_type().get("PONG"), 2u);
  EXPECT_EQ(net_->stats().sent_by_kind.get(PingMsg::message_kind().index()),
            1u);
  EXPECT_EQ(net_->stats().sent_by_kind.get(PongMsg::message_kind().index()),
            2u);
}

TEST_F(NetworkTest, ProbabilisticLossDropsEverythingAtP1) {
  net_ = std::make_unique<Network>(
      sim_, 2, std::make_unique<ConstantDelay>(sim::SimTime::units(0.1)), 1);
  attach_all(2);
  net_->faults().set_loss_probability(1.0);
  for (int i = 0; i < 10; ++i) {
    net_->send(NodeId{0}, NodeId{1}, make_payload<PingMsg>(i));
  }
  sim_.run();
  EXPECT_TRUE(recorders_[1]->received.empty());
  EXPECT_EQ(net_->stats().sent, 10u);     // generated messages still counted
  EXPECT_EQ(net_->stats().dropped, 10u);
  EXPECT_EQ(net_->stats().delivered, 0u);
}

TEST_F(NetworkTest, PerTypeLossOverridesGlobal) {
  net_ = std::make_unique<Network>(
      sim_, 2, std::make_unique<ConstantDelay>(sim::SimTime::units(0.1)), 1);
  attach_all(2);
  net_->faults().set_loss_probability(0.0);
  net_->faults().set_loss_probability("PING", 1.0);
  net_->send(NodeId{0}, NodeId{1}, make_payload<PingMsg>(1));
  net_->send(NodeId{0}, NodeId{1}, make_payload<PongMsg>());
  sim_.run();
  ASSERT_EQ(recorders_[1]->received.size(), 1u);
  EXPECT_EQ(recorders_[1]->received[0].payload->type_name(), "PONG");
}

TEST_F(NetworkTest, OneShotDropHitsFirstMatchOnly) {
  net_ = std::make_unique<Network>(
      sim_, 2, std::make_unique<ConstantDelay>(sim::SimTime::units(0.1)), 1);
  attach_all(2);
  net_->faults().drop_next_of_type("PING");
  net_->send(NodeId{0}, NodeId{1}, make_payload<PingMsg>(1));
  net_->send(NodeId{0}, NodeId{1}, make_payload<PingMsg>(2));
  sim_.run();
  ASSERT_EQ(recorders_[1]->received.size(), 1u);
  EXPECT_EQ(recorders_[1]->received[0].as<PingMsg>()->value, 2);
}

TEST_F(NetworkTest, OneShotDropFiltersSrcAndDst) {
  net_ = std::make_unique<Network>(
      sim_, 3, std::make_unique<ConstantDelay>(sim::SimTime::units(0.1)), 1);
  attach_all(3);
  net_->faults().drop_next_of_type("PING", NodeId{0}, NodeId{2});
  net_->send(NodeId{1}, NodeId{2}, make_payload<PingMsg>(1));  // src mismatch
  net_->send(NodeId{0}, NodeId{1}, make_payload<PingMsg>(2));  // dst mismatch
  net_->send(NodeId{0}, NodeId{2}, make_payload<PingMsg>(3));  // match: drop
  net_->send(NodeId{0}, NodeId{2}, make_payload<PingMsg>(4));  // passes
  sim_.run();
  EXPECT_EQ(recorders_[2]->received.size(), 2u);
  EXPECT_EQ(recorders_[1]->received.size(), 1u);
}

TEST_F(NetworkTest, CancelOneShot) {
  net_ = std::make_unique<Network>(
      sim_, 2, std::make_unique<ConstantDelay>(sim::SimTime::units(0.1)), 1);
  attach_all(2);
  const auto id = net_->faults().drop_next_of_type("PING");
  EXPECT_TRUE(net_->faults().cancel_one_shot(id));
  EXPECT_FALSE(net_->faults().cancel_one_shot(id));
  net_->send(NodeId{0}, NodeId{1}, make_payload<PingMsg>(1));
  sim_.run();
  EXPECT_EQ(recorders_[1]->received.size(), 1u);
}

TEST_F(NetworkTest, DownNodeReceivesAndSendsNothing) {
  net_ = std::make_unique<Network>(
      sim_, 3, std::make_unique<ConstantDelay>(sim::SimTime::units(0.1)), 1);
  attach_all(3);
  net_->faults().set_node_down(NodeId{1}, true);
  net_->send(NodeId{0}, NodeId{1}, make_payload<PingMsg>(1));
  net_->send(NodeId{1}, NodeId{2}, make_payload<PingMsg>(2));
  sim_.run();
  EXPECT_TRUE(recorders_[1]->received.empty());
  EXPECT_TRUE(recorders_[2]->received.empty());
  net_->faults().set_node_down(NodeId{1}, false);
  net_->send(NodeId{0}, NodeId{1}, make_payload<PingMsg>(3));
  sim_.run();
  EXPECT_EQ(recorders_[1]->received.size(), 1u);
}

TEST_F(NetworkTest, CrashWhileMessageInFlightDropsIt) {
  net_ = std::make_unique<Network>(
      sim_, 2, std::make_unique<ConstantDelay>(sim::SimTime::units(1.0)), 1);
  attach_all(2);
  net_->send(NodeId{0}, NodeId{1}, make_payload<PingMsg>(1));
  sim_.schedule_at(sim::SimTime::units(0.5), [this] {
    net_->faults().set_node_down(NodeId{1}, true);
  });
  sim_.run();
  EXPECT_TRUE(recorders_[1]->received.empty());
}

TEST_F(NetworkTest, PartitionBlocksCrossGroupTraffic) {
  net_ = std::make_unique<Network>(
      sim_, 4, std::make_unique<ConstantDelay>(sim::SimTime::units(0.1)), 1);
  attach_all(4);
  net_->faults().set_partition({{NodeId{0}, NodeId{1}}, {NodeId{2}, NodeId{3}}});
  net_->send(NodeId{0}, NodeId{1}, make_payload<PingMsg>(1));  // same group
  net_->send(NodeId{0}, NodeId{2}, make_payload<PingMsg>(2));  // cross
  sim_.run();
  EXPECT_EQ(recorders_[1]->received.size(), 1u);
  EXPECT_TRUE(recorders_[2]->received.empty());
  net_->faults().heal_partition();
  net_->send(NodeId{0}, NodeId{2}, make_payload<PingMsg>(3));
  sim_.run();
  EXPECT_EQ(recorders_[2]->received.size(), 1u);
}

TEST_F(NetworkTest, TapSeesDropsAndPasses) {
  net_ = std::make_unique<Network>(
      sim_, 2, std::make_unique<ConstantDelay>(sim::SimTime::units(0.1)), 1);
  attach_all(2);
  int passed = 0, dropped = 0;
  net_->set_tap([&](const Envelope&, bool drop) {
    (drop ? dropped : passed)++;
  });
  net_->faults().drop_next_of_type("PING");
  net_->send(NodeId{0}, NodeId{1}, make_payload<PingMsg>(1));
  net_->send(NodeId{0}, NodeId{1}, make_payload<PingMsg>(2));
  sim_.run();
  EXPECT_EQ(passed, 1);
  EXPECT_EQ(dropped, 1);
}

TEST_F(NetworkTest, UniformDelayWithinBounds) {
  net_ = std::make_unique<Network>(
      sim_, 2,
      std::make_unique<UniformDelay>(sim::SimTime::units(0.1),
                                     sim::SimTime::units(0.2)),
      7);
  attach_all(2);
  for (int i = 0; i < 200; ++i) {
    net_->send(NodeId{0}, NodeId{1}, make_payload<PingMsg>(i));
  }
  sim_.run();
  ASSERT_EQ(recorders_[1]->received.size(), 200u);
  for (const auto& env : recorders_[1]->received) {
    const double d = (env.delivered_at - env.sent_at).to_units();
    EXPECT_GE(d, 0.1);
    EXPECT_LT(d, 0.3);
  }
}

TEST_F(NetworkTest, MatrixDelayPerPair) {
  std::vector<sim::SimTime> m(4, sim::SimTime::zero());
  m[0 * 2 + 1] = sim::SimTime::units(0.3);
  m[1 * 2 + 0] = sim::SimTime::units(0.7);
  net_ = std::make_unique<Network>(sim_, 2,
                                   std::make_unique<MatrixDelay>(2, m), 1);
  attach_all(2);
  net_->send(NodeId{0}, NodeId{1}, make_payload<PingMsg>(1));
  sim_.run();
  EXPECT_EQ(sim_.now(), sim::SimTime::units(0.3));
  net_->send(NodeId{1}, NodeId{0}, make_payload<PingMsg>(2));
  sim_.run();
  EXPECT_EQ(sim_.now(), sim::SimTime::units(1.0));
}

TEST_F(NetworkTest, ValidationErrors) {
  net_ = std::make_unique<Network>(
      sim_, 2, std::make_unique<ConstantDelay>(sim::SimTime::units(0.1)), 1);
  attach_all(2);
  EXPECT_THROW(net_->send(NodeId{0}, NodeId{5}, make_payload<PongMsg>()),
               std::out_of_range);
  EXPECT_THROW(net_->send(NodeId{0}, NodeId{1}, nullptr),
               std::invalid_argument);
  EXPECT_THROW(net_->attach(NodeId{9}, recorders_[0].get()),
               std::out_of_range);
  EXPECT_THROW(net_->attach(NodeId{0}, nullptr), std::invalid_argument);
  EXPECT_THROW(MatrixDelay(2, std::vector<sim::SimTime>(3)),
               std::invalid_argument);
  EXPECT_THROW(net_->faults().set_loss_probability(1.5),
               std::invalid_argument);
}

}  // namespace
}  // namespace dmx::net
