// Message-kind registry: dense-kind assignment, idempotent interning, eager
// registration of every shipped message type, and agreement between the
// kind-indexed KindCounter and the string-keyed CounterMap it replaced on the
// network send path.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/messages.hpp"
#include "harness/experiment.hpp"
#include "net/msg_kind.hpp"
#include "net/payload.hpp"
#include "stats/counter_map.hpp"
#include "stats/kind_counter.hpp"

namespace dmx {
namespace {

struct AlphaMsg final : net::Msg<AlphaMsg> {
  DMX_REGISTER_MESSAGE(AlphaMsg, "TEST-ALPHA");
};

struct BetaMsg final : net::Msg<BetaMsg> {
  DMX_REGISTER_MESSAGE(BetaMsg, "TEST-BETA");
};

TEST(MsgKindRegistry, KindsAreStableAndIdempotent) {
  const net::MsgKind a1 = AlphaMsg::message_kind();
  const net::MsgKind a2 = AlphaMsg::message_kind();
  EXPECT_EQ(a1, a2);
  EXPECT_TRUE(a1.valid());

  // Interning the same name again yields the same kind; a different name
  // yields a different one.
  auto& reg = net::MsgKindRegistry::instance();
  EXPECT_EQ(reg.intern("TEST-ALPHA"), a1);
  EXPECT_NE(BetaMsg::message_kind(), a1);

  const std::size_t size_before = reg.size();
  (void)reg.intern("TEST-ALPHA");
  (void)reg.intern("TEST-BETA");
  EXPECT_EQ(reg.size(), size_before);
}

TEST(MsgKindRegistry, NameRoundTripsAndInvalidKindIsSafe) {
  EXPECT_EQ(net::MsgKindRegistry::instance().name(AlphaMsg::message_kind()),
            "TEST-ALPHA");
  EXPECT_EQ(net::MsgKindRegistry::instance().name(net::MsgKind{}),
            "<invalid>");
  EXPECT_FALSE(net::MsgKind{}.valid());
}

TEST(MsgKindRegistry, FindDoesNotCreate) {
  auto& reg = net::MsgKindRegistry::instance();
  const std::size_t size_before = reg.size();
  EXPECT_FALSE(reg.find("NO-SUCH-MESSAGE-TYPE").valid());
  EXPECT_EQ(reg.size(), size_before);
  EXPECT_EQ(reg.find("TEST-ALPHA"), AlphaMsg::message_kind());
}

TEST(MsgKindRegistry, PayloadInstancesCarryTheirKind) {
  const AlphaMsg a;
  EXPECT_EQ(a.kind(), AlphaMsg::message_kind());
  EXPECT_EQ(a.type_name(), "TEST-ALPHA");

  const net::PayloadPtr p = net::make_payload<BetaMsg>();
  EXPECT_NE(net::payload_cast<BetaMsg>(p), nullptr);
  EXPECT_EQ(net::payload_cast<AlphaMsg>(p), nullptr);
}

TEST(MsgKindRegistry, EveryShippedMessageTypeRegistersAtStartup) {
  // Msg<T>'s eager hook registers each linked payload type during static
  // initialization — that is what lets the harness validate name-keyed
  // loss configuration up front.  Guard the full shipped vocabulary.
  const std::vector<std::string> expected = {
      // core arbiter protocol
      "REQUEST", "PRIVILEGE", "NEW-ARBITER", "WARNING", "ENQUIRY",
      "ENQUIRY-REPLY", "RESUME", "INVALIDATE", "PROBE", "PROBE-REPLY",
      // baselines
      "SK-REQUEST", "SK-TOKEN", "LP-REQUEST", "LP-REPLY", "LP-RELEASE",
      "RA-REQUEST", "RA-REPLY", "MK-REQUEST", "MK-LOCKED", "MK-FAILED",
      "MK-INQUIRE", "MK-YIELD", "MK-RELEASE", "C-REQUEST", "C-GRANT",
      "C-RELEASE", "RING-TOKEN", "RING-WAKEUP", "SG-REQUEST", "SG-REPLY",
      "RY-REQUEST", "RY-PRIVILEGE"};
  auto& reg = net::MsgKindRegistry::instance();
  for (const auto& name : expected) {
    EXPECT_TRUE(reg.find(name).valid()) << "unregistered: " << name;
  }
}

TEST(MsgKindRegistry, KindsAreDensePerName) {
  // No two registered names share a kind.
  auto& reg = net::MsgKindRegistry::instance();
  std::set<std::string> names;
  for (const auto& name : reg.names()) {
    EXPECT_TRUE(names.insert(std::string(name)).second)
        << "duplicate name: " << name;
  }
  EXPECT_EQ(names.size(), reg.size());
}

TEST(KindCounter, MatchesCounterMapTotals) {
  // Drive both counter styles with the same message stream; translating the
  // kind counter back to names must reproduce the string map exactly.
  stats::KindCounter by_kind;
  stats::CounterMap by_name;
  const std::vector<net::PayloadPtr> stream = {
      net::make_payload<AlphaMsg>(), net::make_payload<BetaMsg>(),
      net::make_payload<AlphaMsg>(), net::make_payload<AlphaMsg>(),
      net::make_payload<BetaMsg>()};
  for (const auto& p : stream) {
    by_kind.increment(p->kind().index());
    by_name.increment(std::string(p->type_name()));
  }
  EXPECT_EQ(by_kind.total(), by_name.total());

  stats::CounterMap translated;
  auto& reg = net::MsgKindRegistry::instance();
  for (std::size_t i = 0; i < by_kind.size(); ++i) {
    if (by_kind.get(i) == 0) continue;
    translated.increment(std::string(reg.name(net::MsgKind::from_index(i))),
                         by_kind.get(i));
  }
  EXPECT_EQ(translated.entries(), by_name.entries());
}

TEST(KindCounter, MergeAndReset) {
  stats::KindCounter a, b;
  a.increment(0, 2);
  a.increment(3);
  b.increment(3, 5);
  b.increment(7);
  a.merge(b);
  EXPECT_EQ(a.get(0), 2u);
  EXPECT_EQ(a.get(3), 6u);
  EXPECT_EQ(a.get(7), 1u);
  EXPECT_EQ(a.total(), 9u);
  a.reset();
  EXPECT_EQ(a.total(), 0u);
}

TEST(LossConfig, UnregisteredTypeNameIsRejected) {
  harness::ExperimentConfig cfg;
  cfg.n_nodes = 3;
  cfg.lambda = 0.5;
  cfg.total_requests = 5;
  cfg.loss_by_type["PRIVILEDGE"] = 0.1;  // typo: must be caught up front
  EXPECT_THROW(harness::run_experiment(cfg), std::invalid_argument);

  cfg.loss_by_type.clear();
  cfg.loss_by_type["PRIVILEGE"] = 0.0;  // registered: accepted
  const auto r = harness::run_experiment(cfg);
  EXPECT_EQ(r.completed, 5u);
}

}  // namespace
}  // namespace dmx
