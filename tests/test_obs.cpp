// End-to-end tests for the observability layer: golden JSONL traces across
// transports, span reconstruction, the Chrome-trace envelope, the run
// manifest schema, and config validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/lock_service.hpp"
#include "harness/manifest.hpp"
#include "obs/sinks.hpp"
#include "obs/span.hpp"

namespace dmx {
namespace {

harness::ExperimentConfig small_config() {
  harness::ExperimentConfig cfg;
  cfg.algorithm = "arbiter-tp";
  cfg.n_nodes = 5;
  cfg.lambda = 0.5;
  cfg.t_msg = 0.1;
  cfg.t_exec = 0.1;
  cfg.total_requests = 60;
  cfg.seed = 11;
  return cfg;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

/// Drop transport-plane records: the reliability layer's own events, which
/// by design are the only difference between a raw and a reliable trace of
/// the same run.
std::vector<std::string> without_transport(const std::vector<std::string>& in) {
  std::vector<std::string> out;
  for (const auto& l : in) {
    if (l.find("\"cat\":\"transport\"") == std::string::npos) out.push_back(l);
  }
  return out;
}

TEST(GoldenTrace, JsonlIdenticalAcrossTransportsModuloTransportEvents) {
  harness::register_builtin_algorithms();
  std::string traces[2];
  const harness::TransportKind kinds[2] = {harness::TransportKind::kRaw,
                                           harness::TransportKind::kReliable};
  for (int i = 0; i < 2; ++i) {
    std::ostringstream os;
    {
      harness::ExperimentConfig cfg = small_config();
      cfg.transport = kinds[i];
      if (kinds[i] == harness::TransportKind::kReliable) {
        // Losing only acks exercises the transport plane (retransmits,
        // dup-drops) without perturbing the protocol timeline: the data
        // frame still arrives on its first transmission.
        cfg.loss_by_type["RT-ACK"] = 0.2;
      }
      cfg.trace_sink = std::make_shared<obs::JsonlSink>(os);
      cfg.collect_spans = true;
      const auto r = harness::run_experiment(cfg);
      EXPECT_TRUE(r.drained);
      EXPECT_EQ(r.safety_violations, 0u);
      if (kinds[i] == harness::TransportKind::kReliable) {
        EXPECT_GT(r.transport.retransmits, 0u);
      }
    }
    traces[i] = os.str();
  }
  const auto raw = without_transport(split_lines(traces[0]));
  const auto reliable = without_transport(split_lines(traces[1]));
  ASSERT_FALSE(raw.empty());
  ASSERT_EQ(raw.size(), reliable.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    EXPECT_EQ(raw[i], reliable[i]) << "first divergence at line " << i;
  }
  // The reliable run does have a transport plane; the filter removed it.
  EXPECT_GT(split_lines(traces[1]).size(), reliable.size());
}

TEST(SpanReconstruction, EveryCompletedRequestYieldsOneCompleteSpan) {
  harness::register_builtin_algorithms();
  auto mem = std::make_shared<obs::MemorySink>();
  harness::ExperimentConfig cfg = small_config();
  cfg.trace_sink = mem;
  cfg.collect_spans = true;
  const auto r = harness::run_experiment(cfg);
  ASSERT_TRUE(r.spans != nullptr);
  EXPECT_EQ(r.spans->completed, r.completed);
  EXPECT_EQ(r.spans->aborted, 0u);
  EXPECT_EQ(r.spans->open, 0u);
  ASSERT_EQ(mem->spans().size(), r.completed);
  for (const obs::Span& s : mem->spans()) {
    EXPECT_TRUE(s.complete);
    EXPECT_FALSE(s.aborted);
    EXPECT_GE(s.node, 0);
    EXPECT_GT(s.request_id, 0u);
    EXPECT_GE(s.queue_wait(), 0.0);
    EXPECT_GE(s.transit(), 0.0);
    EXPECT_GE(s.token_wait(), 0.0);
    EXPECT_GE(s.acquire(), 0.0);
    EXPECT_GT(s.cs_time(), 0.0);
    // acquire decomposes into transit + token_wait.
    EXPECT_NEAR(s.acquire(), s.transit() + s.token_wait(), 1e-9);
  }
  // Phase moments aggregate exactly the completed spans.
  EXPECT_EQ(r.spans->cs.moments.count(), r.completed);
  EXPECT_NEAR(r.spans->cs.moments.mean(), cfg.t_exec, 1e-9);
}

TEST(SpanReconstruction, CrashMarksOpenRequestAborted) {
  harness::register_builtin_algorithms();
  harness::ExperimentConfig cfg = small_config();
  cfg.params.set("recovery", 1.0);
  cfg.fault_plan = "t=0.35 crash 0; t=20 restart 0";
  cfg.collect_spans = true;
  cfg.total_requests = 40;
  const auto r = harness::run_experiment(cfg);
  ASSERT_TRUE(r.spans != nullptr);
  EXPECT_EQ(r.spans->aborted, r.aborted_by_crash);
  EXPECT_EQ(r.spans->completed, r.completed);
}

TEST(ChromeTrace, EnvelopeClosesAndCarriesSlices) {
  harness::register_builtin_algorithms();
  std::ostringstream os;
  {
    harness::ExperimentConfig cfg = small_config();
    cfg.total_requests = 20;
    cfg.trace_sink = std::make_shared<obs::ChromeTraceSink>(os);
    cfg.collect_spans = true;
    (void)harness::run_experiment(cfg);
    // The envelope's closing bracket is written by the sink destructor,
    // which runs when cfg goes out of scope here.
  }
  const std::string out = os.str();
  EXPECT_EQ(out.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);  // instants
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);  // span slices
  EXPECT_NE(out.find("\"name\":\"cs\""), std::string::npos);
  EXPECT_EQ(out.substr(out.size() - 4), "\n]}\n");
}

TEST(RunManifest, SchemaAndSpanBlockPresent) {
  harness::register_builtin_algorithms();
  harness::ExperimentConfig cfg = small_config();
  cfg.collect_spans = true;
  harness::RunRecord rec{cfg, harness::run_experiment(cfg)};
  std::ostringstream os;
  harness::write_run_manifest(os, {rec});
  const std::string m = os.str();
  EXPECT_NE(m.find("\"schema\":\"dmx.run.v1\""), std::string::npos);
  EXPECT_NE(m.find("\"runs\":["), std::string::npos);
  EXPECT_NE(m.find("\"algorithm\":\"arbiter-tp\""), std::string::npos);
  EXPECT_NE(m.find("\"messages_by_type\""), std::string::npos);
  EXPECT_NE(m.find("\"REQUEST\""), std::string::npos);
  EXPECT_NE(m.find("\"spans\""), std::string::npos);
  EXPECT_NE(m.find("\"token_wait\""), std::string::npos);
  EXPECT_NE(m.find("\"grant_wait\""), std::string::npos);
  EXPECT_NE(m.find("\"transport\""), std::string::npos);
  // Lock-service scenario keys (PR 9) are part of the config schema even
  // for single-resource runs, so downstream tooling can rely on them.
  EXPECT_NE(m.find("\"n_resources\":1"), std::string::npos);
  EXPECT_NE(m.find("\"zipf_s\""), std::string::npos);
  EXPECT_NE(m.find("\"shard_algo_hot\":\"arbiter-tp\""), std::string::npos);
  EXPECT_NE(m.find("\"shard_algo_cold\":\"path-reversal\""), std::string::npos);
  // Balanced JSON at the top level: crude but catches envelope bugs.
  EXPECT_EQ(std::count(m.begin(), m.end(), '{'),
            std::count(m.begin(), m.end(), '}'));
}

TEST(RunManifest, LockServiceBlockSchema) {
  harness::register_builtin_algorithms();
  harness::LockServiceConfig ls;
  ls.n_resources = 6;
  ls.zipf_s = 1.1;
  ls.total_demands = 400;
  ls.hot_nodes = 4;
  ls.cold_nodes = 2;
  ls.think_mean = 0.5;
  ls.batch_size = 4;
  ls.seed = 7;
  const harness::LockServiceReport report = harness::run_lock_service(ls);

  harness::ExperimentConfig cfg = small_config();
  cfg.n_resources = ls.n_resources;
  cfg.zipf_s = ls.zipf_s;
  harness::ExperimentResult result;
  result.algorithm = "lock-service";
  result.completed = report.total_completed;
  result.drained = report.drained;
  result.lock_service =
      std::make_shared<const harness::LockServiceReport>(report);
  std::ostringstream os;
  harness::write_run_manifest(os, {harness::RunRecord{cfg, result}});
  const std::string m = os.str();

  EXPECT_NE(m.find("\"lock_service\""), std::string::npos);
  EXPECT_NE(m.find("\"hot_shards\""), std::string::npos);
  EXPECT_NE(m.find("\"grant_p99_worst\""), std::string::npos);
  EXPECT_NE(m.find("\"fairness_min\""), std::string::npos);
  EXPECT_NE(m.find("\"shards\":["), std::string::npos);
  // Per-shard scorecard keys.
  EXPECT_NE(m.find("\"grant_p50\""), std::string::npos);
  EXPECT_NE(m.find("\"grant_p99\""), std::string::npos);
  EXPECT_NE(m.find("\"fairness\""), std::string::npos);
  EXPECT_NE(m.find("\"algorithm\":\"path-reversal\""), std::string::npos);
  EXPECT_NE(m.find("\"hot\":true"), std::string::npos);
  EXPECT_NE(m.find("\"hot\":false"), std::string::npos);
  EXPECT_NE(m.find("\"drained\":true"), std::string::npos);
  // One shard object per resource.
  std::size_t shard_objects = 0;
  for (std::size_t pos = m.find("\"resource\":"); pos != std::string::npos;
       pos = m.find("\"resource\":", pos + 1)) {
    ++shard_objects;
  }
  EXPECT_EQ(shard_objects, ls.n_resources);
  EXPECT_EQ(std::count(m.begin(), m.end(), '{'),
            std::count(m.begin(), m.end(), '}'));
}

TEST(ConfigValidation, ReportsEveryProblemAtOnce) {
  harness::register_builtin_algorithms();
  harness::ExperimentConfig cfg;
  cfg.algorithm = "no-such-algo";
  cfg.n_nodes = 0;
  cfg.lambda = -1.0;
  cfg.total_requests = 0;
  cfg.loss_by_type["REQUEST"] = 1.5;
  const auto errors = cfg.validate();
  EXPECT_GE(errors.size(), 5u);
  bool mentions_algo = false;
  for (const auto& e : errors) {
    if (e.find("no-such-algo") != std::string::npos) mentions_algo = true;
  }
  EXPECT_TRUE(mentions_algo);
}

TEST(ConfigValidation, ValidConfigPasses) {
  harness::register_builtin_algorithms();
  EXPECT_TRUE(small_config().validate().empty());
}

TEST(ConfigValidation, RunExperimentThrowsOnInvalidConfig) {
  harness::register_builtin_algorithms();
  harness::ExperimentConfig cfg = small_config();
  cfg.lambda = 0.0;
  EXPECT_THROW((void)harness::run_experiment(cfg), std::invalid_argument);
}

TEST(ConfigBuilder, BuildsValidatedConfig) {
  harness::register_builtin_algorithms();
  const harness::ExperimentConfig cfg =
      harness::ExperimentConfigBuilder{}
          .algorithm("suzuki-kasami")
          .nodes(7)
          .lambda(0.25)
          .t_msg(0.2)
          .t_exec(0.05)
          .total_requests(500)
          .seed(9)
          .param("t_req", 1.0)
          .transport(harness::TransportKind::kReliable)
          .collect_spans()
          .build();
  EXPECT_EQ(cfg.algorithm, "suzuki-kasami");
  EXPECT_EQ(cfg.n_nodes, 7u);
  EXPECT_TRUE(cfg.collect_spans);
  EXPECT_EQ(cfg.transport, harness::TransportKind::kReliable);
}

TEST(ConfigBuilder, ThrowsListingEveryError) {
  harness::register_builtin_algorithms();
  try {
    (void)harness::ExperimentConfigBuilder{}
        .algorithm("bogus")
        .lambda(-2.0)
        .build();
    FAIL() << "build() should have thrown";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bogus"), std::string::npos);
    EXPECT_NE(msg.find("lambda"), std::string::npos);
  }
}

}  // namespace
}  // namespace dmx
