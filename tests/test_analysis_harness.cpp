// Tests for the closed-form models (analysis/) and the experiment harness
// plumbing (replication, CSV/table output, validation).
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/models.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"

namespace dmx {
namespace {

TEST(AnalyticModels, PaperEquationValues) {
  // Eq. (1): N=10 -> (100-1)/10 = 9.9.
  EXPECT_DOUBLE_EQ(analysis::arbiter_messages_light(10), 9.9);
  // Eq. (4): N=10 -> 3 - 0.2 = 2.8.
  EXPECT_DOUBLE_EQ(analysis::arbiter_messages_heavy(10), 2.8);
  // Large-N limits (Eq. 2 and Eq. 5).
  EXPECT_NEAR(analysis::arbiter_messages_light(1000), 1000.0, 0.01);
  EXPECT_NEAR(analysis::arbiter_messages_heavy(1000), 3.0, 0.01);

  const analysis::Timing t{0.1, 0.1, 0.1};
  // Eq. (3): 0.9*0.2 + 0.1 + 0.1 = 0.38.
  EXPECT_NEAR(analysis::arbiter_service_light(10, t), 0.38, 1e-12);
  // Eq. (6): 0.9*0.1 + 0.1 + 6*0.2 = 1.39.
  EXPECT_NEAR(analysis::arbiter_service_heavy(10, t), 1.39, 1e-12);
}

TEST(AnalyticModels, BaselineValues) {
  EXPECT_DOUBLE_EQ(analysis::ricart_agrawala_messages(10), 18.0);
  EXPECT_DOUBLE_EQ(analysis::lamport_messages(10), 27.0);
  EXPECT_DOUBLE_EQ(analysis::suzuki_kasami_messages(10), 10.0);
  EXPECT_DOUBLE_EQ(analysis::centralized_messages(), 3.0);
  EXPECT_DOUBLE_EQ(analysis::raymond_messages_heavy(), 4.0);
  EXPECT_NEAR(analysis::raymond_messages_light(16), 8.0, 1e-12);
  EXPECT_NEAR(analysis::maekawa_messages_low(16), 12.0, 1e-12);
  EXPECT_NEAR(analysis::maekawa_messages_high(16), 20.0, 1e-12);
}

TEST(AnalyticModels, LavaultPathReversalValues) {
  // Small-n values computable by hand from the stationary tree
  // distribution: e_2 = H_2 - 1 = 1/2, e_3 = H_3 - 1 = 5/6.
  EXPECT_NEAR(analysis::harmonic(1), 1.0, 1e-12);
  EXPECT_NEAR(analysis::harmonic(4), 25.0 / 12.0, 1e-12);
  EXPECT_NEAR(analysis::path_reversal_reversal_cost(2), 0.5, 1e-12);
  EXPECT_NEAR(analysis::path_reversal_reversal_cost(3), 5.0 / 6.0, 1e-12);
  // messages/CS = H_n - 1/n: n=2 -> 1.0, n=10 -> 2.8289682539682537.
  EXPECT_NEAR(analysis::path_reversal_messages_avg(2), 1.0, 1e-12);
  EXPECT_NEAR(analysis::path_reversal_messages_avg(10), 2.8289682539682537,
              1e-12);
  // The asymptotic form ln n + gamma approaches the exact curve from
  // above (H_n = ln n + gamma + 1/(2n) - ..., minus the 1/n token term),
  // with the gap shrinking like 1/(2n).
  for (std::size_t n : {8u, 32u, 128u, 512u}) {
    const double exact = analysis::path_reversal_messages_avg(n);
    const double asym = analysis::path_reversal_messages_asymptotic(n);
    EXPECT_GT(asym, exact);
    EXPECT_NEAR(asym - exact, 0.5 / static_cast<double>(n),
                0.5 / static_cast<double>(n));
  }
}

TEST(AnalyticModels, MeasuredPathReversalMatchesLavaultCurve) {
  // The headline validation: at light load with uniform random requesters,
  // the measured mean messages/CS must sit on Lavault's H_n - 1/n curve.
  for (std::size_t n : {4u, 8u, 16u}) {
    harness::ExperimentConfig cfg;
    cfg.algorithm = "path-reversal";
    cfg.n_nodes = n;
    cfg.lambda = 0.02;
    cfg.total_requests = 20'000;
    cfg.seed = 7;
    const auto r = harness::run_experiment(cfg);
    EXPECT_TRUE(r.drained);
    EXPECT_EQ(r.safety_violations, 0u);
    const double curve = analysis::path_reversal_messages_avg(n);
    EXPECT_NEAR(r.messages_per_cs, curve, 0.08 * curve)
        << "n=" << n << " measured=" << r.messages_per_cs
        << " analytic=" << curve;
  }
}

TEST(Harness, ReplicationProducesIndependentSeeds) {
  harness::ExperimentConfig cfg;
  cfg.n_nodes = 5;
  cfg.lambda = 0.5;
  cfg.total_requests = 1'000;
  cfg.seed = 42;
  const auto runs = harness::run_replicated(cfg, 3);
  ASSERT_EQ(runs.size(), 3u);
  for (const auto& r : runs) {
    EXPECT_TRUE(r.drained);
    EXPECT_EQ(r.safety_violations, 0u);
  }
  // Different seeds should give (slightly) different trajectories.
  EXPECT_NE(runs[0].sim_events, runs[1].sim_events);
}

TEST(Harness, ValidatesConfig) {
  harness::ExperimentConfig cfg;
  cfg.n_nodes = 0;
  EXPECT_THROW((void)harness::run_experiment(cfg), std::invalid_argument);
  cfg.n_nodes = 3;
  cfg.lambda = 0.0;
  EXPECT_THROW((void)harness::run_experiment(cfg), std::invalid_argument);
  cfg.lambda = 1.0;
  cfg.algorithm = "not-an-algorithm";
  EXPECT_THROW((void)harness::run_experiment(cfg), std::invalid_argument);
}

TEST(Harness, ResultAccountingConsistent) {
  harness::ExperimentConfig cfg;
  cfg.n_nodes = 6;
  cfg.lambda = 0.8;
  cfg.total_requests = 2'000;
  cfg.seed = 17;
  const auto r = harness::run_experiment(cfg);
  EXPECT_EQ(r.submitted, cfg.total_requests);
  std::uint64_t per_node = 0;
  for (auto c : r.completions_per_node) per_node += c;
  EXPECT_EQ(per_node, r.completed);
  std::uint64_t by_type = 0;
  const stats::CounterMap type_counts = r.messages_by_type();
  for (const auto& [k, v] : type_counts.entries()) by_type += v;
  EXPECT_EQ(by_type, r.messages_total);
  EXPECT_EQ(r.response_time.count(), r.completed);
  EXPECT_GE(r.service_time.mean(), r.response_time.mean());
  EXPECT_GE(r.sojourn_time.mean(), r.service_time.mean() - 1e-9);
}

TEST(Table, AlignedOutput) {
  harness::Table t({"lambda", "msgs/cs"});
  t.add_row({"0.1", "9.90"});
  t.add_row({"10", "2.80"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("lambda"), std::string::npos);
  EXPECT_NE(s.find("9.90"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(Table, CsvOutput) {
  harness::Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, Validation) {
  harness::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(harness::Table({}), std::invalid_argument);
  EXPECT_EQ(harness::Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(harness::Table::integer(42), "42");
}

}  // namespace
}  // namespace dmx
