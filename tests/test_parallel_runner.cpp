// Parallel sweep executor + sealed registries.
//
// The contract under test: running the flattened seed×point job list on any
// number of workers produces output byte-identical to the serial path —
// table text, dmx.run.v1 manifest, per-run JSONL traces — including under a
// lossy reliable-transport chaos campaign.  And the process-wide kind
// registries, once frozen, are immutable: late intern of an unknown name
// throws, concurrent lookups are lock-free and clean (the TSan CI job runs
// this binary), and sealing changes nothing about the kind→name table.
//
// Test order matters for the freeze-transition test: RegistrySeal.* run
// before any ParallelRunner test has frozen the registries, so the
// pre-freeze snapshot really is pre-freeze.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "harness/cli.hpp"
#include "harness/manifest.hpp"
#include "harness/parallel.hpp"
#include "net/msg_kind.hpp"
#include "obs/event.hpp"

namespace dmx::harness {
namespace {

// ---------------------------------------------------------------------------
// Registry seal (declared first: must observe the pre-freeze state).

TEST(RegistrySeal, FreezeKeepsKindTableByteIdentical) {
  auto& msg = net::MsgKindRegistry::instance();
  auto& ev = obs::EventKindRegistry::instance();
  const std::vector<std::string> msg_before = msg.names();
  const std::vector<std::string> ev_before = ev.names();
  ASSERT_FALSE(msg_before.empty());  // static registration happened
  ASSERT_FALSE(ev_before.empty());

  freeze_registries();
  EXPECT_TRUE(msg.frozen());
  EXPECT_TRUE(ev.frozen());
  EXPECT_EQ(msg.names(), msg_before);
  EXPECT_EQ(ev.names(), ev_before);
  // Every pre-freeze kind still resolves to the same name by index.
  for (std::size_t i = 0; i < msg_before.size(); ++i) {
    EXPECT_EQ(msg.name(net::MsgKind::from_index(i)), msg_before[i]);
  }

  freeze_registries();  // idempotent
  EXPECT_EQ(msg.names(), msg_before);
}

TEST(RegistrySeal, PostFreezeInternOfKnownNameStillResolves) {
  freeze_registries();
  auto& msg = net::MsgKindRegistry::instance();
  const std::vector<std::string> known = msg.names();
  for (const std::string& name : known) {
    EXPECT_EQ(msg.intern(name), msg.find(name)) << name;
  }
  auto& ev = obs::EventKindRegistry::instance();
  for (const std::string& name : ev.names()) {
    EXPECT_EQ(ev.intern(name, "any-category"), ev.find(name)) << name;
  }
}

TEST(RegistrySeal, PostFreezeInternOfUnknownNameThrows) {
  freeze_registries();
  EXPECT_THROW(net::MsgKindRegistry::instance().intern("LATECOMER-MSG"),
               std::logic_error);
  EXPECT_THROW(
      obs::EventKindRegistry::instance().intern("late.event", "late"),
      std::logic_error);
  // Empty-name validation still fires first.
  EXPECT_THROW(net::MsgKindRegistry::instance().intern(""),
               std::invalid_argument);
}

TEST(RegistrySeal, ConcurrentLookupsOnFrozenRegistryAreClean) {
  freeze_registries();
  auto& msg = net::MsgKindRegistry::instance();
  auto& ev = obs::EventKindRegistry::instance();
  const std::vector<std::string> msg_names = msg.names();
  const std::vector<std::string> ev_names = ev.names();
  std::atomic<std::size_t> mismatches{0};
  auto hammer = [&] {
    for (int round = 0; round < 200; ++round) {
      for (std::size_t i = 0; i < msg_names.size(); ++i) {
        const net::MsgKind k = msg.find(msg_names[i]);
        if (!k.valid() || k.index() != i) mismatches.fetch_add(1);
        if (msg.name(k) != msg_names[i]) mismatches.fetch_add(1);
        if (msg.intern(msg_names[i]) != k) mismatches.fetch_add(1);
      }
      for (std::size_t i = 0; i < ev_names.size(); ++i) {
        const obs::EventKind k = ev.find(ev_names[i]);
        if (!k.valid() || k.index() != i) mismatches.fetch_add(1);
        if (ev.name(k) != ev_names[i]) mismatches.fetch_add(1);
        if (ev.category(k) != ev.category(obs::EventKind::from_index(i))) {
          mismatches.fetch_add(1);
        }
      }
      if (msg.size() != msg_names.size()) mismatches.fetch_add(1);
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) threads.emplace_back(hammer);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

// ---------------------------------------------------------------------------
// Seed schedule.

TEST(SeedSchedule, PinnedFormula) {
  ExperimentConfig cfg;
  cfg.seed = 42;
  EXPECT_EQ(seed_schedule(cfg, 0), 59u);      // 42 + 0 + 17
  EXPECT_EQ(seed_schedule(cfg, 1), 1059u);    // 42 + 1000 + 17
  EXPECT_EQ(seed_schedule(cfg, 7), 7059u);
  cfg.seed = 5;
  EXPECT_EQ(seed_schedule(cfg, 3), 3022u);
}

// ---------------------------------------------------------------------------
// Helpers: run a sweep through the CLI, capturing all three artifacts.

std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

struct SweepArtifacts {
  int exit_code = -1;
  std::string table;
  std::string manifest;
  std::string trace;
};

SweepArtifacts run_sweep(CliOptions opts, std::size_t jobs) {
  // ctest runs each gtest case as its own process, concurrently — the
  // artifact names must be unique per process AND per call.
  static std::atomic<int> unique{0};
  const std::string id = std::to_string(::getpid()) + "_" +
                         std::to_string(unique.fetch_add(1));
  const std::filesystem::path dir = std::filesystem::temp_directory_path();
  const std::filesystem::path manifest =
      dir / ("dmx_pr_manifest_" + id + ".json");
  const std::filesystem::path trace = dir / ("dmx_pr_trace_" + id + ".jsonl");
  opts.jobs = jobs;
  opts.emit_json = manifest.string();
  opts.trace_out = trace.string();
  SweepArtifacts a;
  std::ostringstream os;
  a.exit_code = run_cli(opts, os);
  a.table = os.str();
  a.manifest = slurp(manifest);
  a.trace = slurp(trace);
  std::filesystem::remove(manifest);
  std::filesystem::remove(trace);
  return a;
}

CliOptions small_sweep() {
  CliOptions o;
  o.algorithm = "arbiter-tp";
  o.lambdas = {0.2, 0.5};
  o.seeds = 4;
  o.requests = 1'500;
  return o;
}

void expect_identical(const SweepArtifacts& serial,
                      const SweepArtifacts& parallel, const char* label) {
  EXPECT_EQ(serial.exit_code, parallel.exit_code) << label;
  EXPECT_EQ(serial.table, parallel.table) << label;
  EXPECT_EQ(serial.manifest, parallel.manifest) << label;
  EXPECT_EQ(serial.trace, parallel.trace) << label;
}

// ---------------------------------------------------------------------------
// Determinism equality: jobs 1/2/8 vs the serial seed path.

TEST(ParallelSweep, ByteIdenticalTableManifestTraceAcrossJobs) {
  const CliOptions o = small_sweep();
  const SweepArtifacts serial = run_sweep(o, 1);
  ASSERT_EQ(serial.exit_code, 0);
  ASSERT_FALSE(serial.table.empty());
  ASSERT_FALSE(serial.manifest.empty());
  ASSERT_FALSE(serial.trace.empty());
  expect_identical(serial, run_sweep(o, 2), "--jobs 2");
  expect_identical(serial, run_sweep(o, 8), "--jobs 8");
}

TEST(ParallelSweep, ByteIdenticalUnderLossyReliableCampaign) {
  CliOptions o;
  o.algorithm = "suzuki-kasami";
  o.n_nodes = 5;
  o.lambdas = {0.3};
  o.seeds = 6;
  o.requests = 400;
  o.transport = TransportKind::kReliable;
  o.fault_plan =
      "t=5 loss *=0.2 until=60; reorder-window t=10..30; t=12 dup-next RT-ACK";
  const SweepArtifacts serial = run_sweep(o, 1);
  ASSERT_EQ(serial.exit_code, 0) << serial.table;
  expect_identical(serial, run_sweep(o, 2), "lossy --jobs 2");
  expect_identical(serial, run_sweep(o, 8), "lossy --jobs 8");
}

// ---------------------------------------------------------------------------
// run_replicated: the library-level fan-out matches the serial path.

std::string fingerprint(const ExperimentConfig& cfg,
                        const ExperimentResult& r) {
  // The manifest serializes the full config + result deterministically; a
  // byte-equal manifest record is as strong an equality as the artifacts
  // themselves make observable.
  std::ostringstream os;
  write_run_manifest(os, {RunRecord{cfg, r}});
  return os.str();
}

TEST(ParallelSweep, RunReplicatedParallelMatchesSerial) {
  ExperimentConfig cfg;
  cfg.algorithm = "raymond";
  cfg.n_nodes = 6;
  cfg.lambda = 0.4;
  cfg.total_requests = 1'000;
  cfg.collect_spans = true;

  cfg.jobs = 1;
  const std::vector<ExperimentResult> serial = run_replicated(cfg, 5);
  cfg.jobs = 4;
  const std::vector<ExperimentResult> parallel = run_replicated(cfg, 5);
  cfg.jobs = 0;  // auto-detect
  const std::vector<ExperimentResult> auto_jobs = run_replicated(cfg, 5);

  ASSERT_EQ(serial.size(), 5u);
  ASSERT_EQ(parallel.size(), 5u);
  ASSERT_EQ(auto_jobs.size(), 5u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ExperimentConfig rep = cfg;
    rep.seed = seed_schedule(cfg, i);
    const std::string want = fingerprint(rep, serial[i]);
    EXPECT_EQ(fingerprint(rep, parallel[i]), want) << "replication " << i;
    EXPECT_EQ(fingerprint(rep, auto_jobs[i]), want) << "replication " << i;
  }
}

// ---------------------------------------------------------------------------
// Runner mechanics.

TEST(ParallelRunnerApi, ResolveZeroMeansHardwareConcurrency) {
  EXPECT_GE(ParallelRunner::resolve(0), 1u);
  EXPECT_EQ(ParallelRunner::resolve(3), 3u);
  EXPECT_EQ(ParallelRunner(5).jobs(), 5u);
}

TEST(ParallelRunnerApi, EmptyJobListIsFine) {
  EXPECT_TRUE(ParallelRunner(4).run({}).empty());
}

TEST(ParallelRunnerApi, LowestIndexExceptionPropagatesAfterDrain) {
  ExperimentConfig good;
  good.algorithm = "centralized";
  good.n_nodes = 3;
  good.lambda = 0.5;
  good.total_requests = 50;
  ExperimentConfig bad = good;
  bad.algorithm = "no-such-algorithm";
  const std::vector<ExperimentConfig> configs = {good, bad, good, bad};
  try {
    (void)ParallelRunner(4).run(configs);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("no-such-algorithm"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace dmx::harness
