// Tests for the sequence-number variant (§2.4): REQUEST(j, n) +
// PRIVILEGE(Q, L), last-granted suppression and fewest-entries-first
// ordering (the Suzuki–Kasami-style fairness the paper sketches).
#include <gtest/gtest.h>

#include "core/messages.hpp"
#include "testbed.hpp"

namespace dmx::core {
namespace {

using testbed::MutexCluster;

mutex::ParamSet seq_params() {
  mutex::ParamSet p;
  // A wide collection window so scripted requests share one batch.
  p.set("sequenced", 1.0).set("order", std::string("sequence"))
      .set("t_req", 1.0);
  return p;
}

TEST(Sequenced, StaleRequestSuppressedByLArray) {
  MutexCluster tb("arbiter-tp", 4, seq_params());
  // Node 1 executes one CS normally.
  tb.submit_at(0.0, 1);
  tb.sim().run();
  ASSERT_EQ(tb.total_completed(), 1u);

  // Node 1 is now the arbiter holding the token with L[1] = 1.  A stale
  // duplicate of its first request (sequence 1) arrives: must be dropped.
  QEntry stale;
  stale.node = net::NodeId{1};
  stale.request_id = 424242;
  stale.sequence = 1;
  tb.network().send(net::NodeId{2}, net::NodeId{1},
                    net::make_payload<RequestMsg>(stale));
  tb.sim().run();
  EXPECT_EQ(tb.total_completed(), 1u);  // no double grant
  EXPECT_GE(tb.arbiter(1).protocol_stats().duplicates_dropped, 1u);
}

TEST(Sequenced, BatchOrderedByFewestPriorEntries) {
  // Node 3 has completed two CSs (sequence counter at 3), node 2 none.
  // When both land in one batch, node 2 (lower sequence) goes first.
  MutexCluster tb("arbiter-tp", 4, seq_params());
  tb.submit_at(0.0, 3);
  tb.submit_at(3.0, 3);
  tb.sim().run();
  ASSERT_EQ(tb.total_completed(), 2u);

  std::vector<int> order;
  for (std::size_t i = 0; i < 4; ++i) {
    tb.drivers[i]->set_completion_callback(
        [&order, i](const mutex::CsRequest&) {
          order.push_back(static_cast<int>(i));
        });
  }
  // Same collection window: node 3 arrives first (FCFS would keep it
  // first), but its sequence (3) exceeds node 2's (1).
  tb.submit_at(10.0, 3);
  tb.submit_at(10.2, 2);
  tb.sim().run();
  EXPECT_EQ(order, (std::vector<int>{2, 3}));
}

TEST(Sequenced, LArrayTravelsWithToken) {
  MutexCluster tb("arbiter-tp", 4, seq_params());
  // Serve several rounds from different nodes; if L failed to travel,
  // resubmissions would double-grant somewhere (the duplicate counter and
  // grant totals check this indirectly).
  for (int round = 0; round < 5; ++round) {
    for (std::size_t i = 1; i < 4; ++i) {
      tb.submit_at(5.0 * round + 0.3 * static_cast<double>(i), i);
    }
  }
  tb.sim().run();
  EXPECT_EQ(tb.total_completed(), 15u);
  EXPECT_EQ(tb.monitor.violations(), 0u);
}

TEST(Sequenced, SafeAndLiveUnderLoadWithRetransmissions) {
  // Aggressive retransmission (every miss) + sequenced dedup: exactly one
  // grant per demand even though duplicates fly everywhere.
  harness::ExperimentConfig cfg;
  cfg.algorithm = "arbiter-tp";
  cfg.params = seq_params();
  cfg.params.set("resubmit_after_misses", 1.0).set("t_fwd", 0.0);
  cfg.n_nodes = 10;
  cfg.lambda = 0.4;
  cfg.total_requests = 10'000;
  cfg.seed = 77;
  const auto r = harness::run_experiment(cfg);
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.completed, cfg.total_requests);  // not one more, not one less
  EXPECT_EQ(r.safety_violations, 0u);
  EXPECT_GT(r.protocol.duplicates_dropped, 0u);
}

}  // namespace
}  // namespace dmx::core
