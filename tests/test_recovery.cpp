// Failure-recovery tests (§6): lost requests, lost tokens (dropped PRIVILEGE
// and crashed holders), the two-phase token invalidation protocol, spurious
// warnings (RESUME path), failed-arbiter takeover, and sustained random
// message loss.
#include <gtest/gtest.h>

#include "testbed.hpp"

namespace dmx::core {
namespace {

using testbed::MutexCluster;

mutex::ParamSet recovery_params() {
  mutex::ParamSet p;
  p.set("recovery", 1.0)
      .set("token_timeout", 3.0)
      .set("enquiry_timeout", 1.0)
      .set("arbiter_timeout", 6.0)
      .set("probe_timeout", 1.0);
  return p;
}

TEST(Recovery, DroppedPrivilegeIsRegenerated) {
  MutexCluster tb("arbiter-tp", 5, recovery_params());
  // The PRIVILEGE from the arbiter to the first requester vanishes.
  tb.network().faults().drop_next_of_type("PRIVILEGE");
  tb.submit_at(0.0, 1);
  tb.submit_at(0.1, 2);
  tb.sim().run_until(sim::SimTime::units(60.0));
  EXPECT_EQ(tb.total_completed(), 2u);
  EXPECT_EQ(tb.monitor.violations(), 0u);
  const auto s = tb.protocol_stats();
  EXPECT_GE(s.tokens_regenerated, 1u);
  EXPECT_GE(s.enquiries_sent, 1u);
  EXPECT_GE(s.invalidates_sent, 1u);
}

TEST(Recovery, DroppedMidQueuePrivilegeRecovered) {
  MutexCluster tb("arbiter-tp", 5, recovery_params());
  tb.submit_at(0.0, 1);
  tb.submit_at(0.05, 2);
  tb.submit_at(0.1, 3);
  // Lose the hand-off between queue members (1 -> 2), after 1's CS.
  tb.network().faults().drop_next_of_type("PRIVILEGE", net::NodeId{1},
                                          net::NodeId{2});
  tb.sim().run_until(sim::SimTime::units(60.0));
  EXPECT_EQ(tb.total_completed(), 3u);
  EXPECT_EQ(tb.monitor.violations(), 0u);
  EXPECT_GE(tb.protocol_stats().tokens_regenerated, 1u);
}

TEST(Recovery, CrashedTokenHolderExcludedOthersServed) {
  MutexCluster tb("arbiter-tp", 5, recovery_params());
  tb.submit_at(0.0, 1);
  tb.submit_at(0.05, 2);
  tb.submit_at(0.1, 3);
  // Node 1 receives the token at t=0.3 and dies inside its critical section
  // (CS spans [0.3, 0.4]).
  tb.crash_at(0.35, 1);
  tb.sim().run_until(sim::SimTime::units(60.0));
  // Nodes 2 and 3 are served; node 1's request died with it.
  EXPECT_EQ(tb.drivers[2]->completed(), 1u);
  EXPECT_EQ(tb.drivers[3]->completed(), 1u);
  EXPECT_EQ(tb.monitor.violations(), 0u);
  EXPECT_GE(tb.protocol_stats().tokens_regenerated, 1u);
}

TEST(Recovery, SlowHolderTriggersResumeNotRegeneration) {
  // The token is alive but the CS is longer than the token timeout: the
  // waiting node sends WARNING, the arbiter enquires, the holder answers
  // "I have the token" and a RESUME keeps the run intact — no regeneration.
  mutex::ParamSet p = recovery_params();
  p.set("token_timeout", 1.0);
  MutexCluster tb("arbiter-tp", 5, p, /*t_msg=*/0.1, /*t_exec=*/2.5);
  tb.submit_at(0.0, 1);
  tb.submit_at(0.05, 2);
  tb.sim().run_until(sim::SimTime::units(60.0));
  EXPECT_EQ(tb.total_completed(), 2u);
  EXPECT_EQ(tb.monitor.violations(), 0u);
  const auto s = tb.protocol_stats();
  EXPECT_GE(s.warnings_sent + s.enquiries_sent, 1u);
  EXPECT_GE(s.resumes_sent, 1u);
  EXPECT_EQ(s.tokens_regenerated, 0u);
}

TEST(Recovery, CrashedArbiterElectIsTakenOver) {
  MutexCluster tb("arbiter-tp", 5, recovery_params());
  tb.submit_at(0.0, 1);
  tb.submit_at(0.05, 2);
  // Node 2 is the tail of the batch {1, 2} and becomes the next arbiter.
  // It dies right after its own CS, before any further dispatch, holding
  // the token.  The previous arbiter (node 0) must take over.
  tb.crash_at(0.95, 2);
  tb.submit_at(2.0, 3);  // a request that only a recovered system can serve
  tb.sim().run_until(sim::SimTime::units(60.0));
  EXPECT_EQ(tb.drivers[1]->completed(), 1u);
  EXPECT_EQ(tb.drivers[3]->completed(), 1u);
  EXPECT_EQ(tb.monitor.violations(), 0u);
  const auto s = tb.protocol_stats();
  EXPECT_GE(s.probes_sent, 1u);
  EXPECT_GE(s.arbiter_takeovers, 1u);
  EXPECT_GE(s.tokens_regenerated, 1u);
}

TEST(Recovery, LostNewArbiterToElectIsCoveredByTokenProof) {
  // The NEW-ARBITER naming node 2 never reaches node 2; the token itself
  // proves arbitership when it arrives (§3.1's observation).
  MutexCluster tb("arbiter-tp", 5, recovery_params());
  tb.network().faults().drop_next_of_type("NEW-ARBITER", net::NodeId{},
                                          net::NodeId{2});
  tb.submit_at(0.0, 1);
  tb.submit_at(0.05, 2);
  tb.submit_at(3.0, 3);
  tb.sim().run_until(sim::SimTime::units(60.0));
  EXPECT_EQ(tb.total_completed(), 3u);
  EXPECT_EQ(tb.monitor.violations(), 0u);
}

TEST(Recovery, LostRequestRetransmitted) {
  MutexCluster tb("arbiter-tp", 5, recovery_params());
  tb.network().faults().drop_next_of_type("REQUEST", net::NodeId{3});
  tb.submit_at(0.0, 3);
  tb.submit_at(0.5, 1);  // traffic so NEW-ARBITER misses accumulate
  tb.sim().run_until(sim::SimTime::units(60.0));
  EXPECT_EQ(tb.total_completed(), 2u);
  EXPECT_GE(tb.protocol_stats().resubmissions, 1u);
}

TEST(Recovery, CrashedBystanderDoesNotBlockTheSystem) {
  // §6: failure of nodes not scheduled to receive the token does not impede
  // the algorithm — even without any recovery machinery.
  mutex::ParamSet p;  // recovery off
  MutexCluster tb("arbiter-tp", 6, p);
  tb.crash_at(0.0, 4);
  tb.crash_at(0.0, 5);
  tb.submit_at(0.1, 1);
  tb.submit_at(0.2, 2);
  tb.submit_at(5.0, 3);
  tb.sim().run_until(sim::SimTime::units(60.0));
  EXPECT_EQ(tb.total_completed(), 3u);
  EXPECT_EQ(tb.monitor.violations(), 0u);
}

TEST(Recovery, RestartedNodeRejoins) {
  MutexCluster tb("arbiter-tp", 5, recovery_params());
  tb.submit_at(0.0, 1);
  tb.crash_at(1.5, 3);
  tb.restart_at(4.0, 3);
  tb.submit_at(6.0, 3);  // the restarted node requests again
  tb.submit_at(6.1, 2);
  tb.sim().run_until(sim::SimTime::units(80.0));
  EXPECT_EQ(tb.drivers[3]->completed(), 1u);
  EXPECT_EQ(tb.total_completed(), 3u);
  EXPECT_EQ(tb.monitor.violations(), 0u);
}

class LossSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LossSoak, SurvivesSustainedRandomLoss) {
  harness::ExperimentConfig cfg;
  cfg.algorithm = "arbiter-tp";
  cfg.params = recovery_params();
  cfg.params.set("resubmit_after_misses", 1.0).set("request_retry_timeout",
                                                   5.0);
  cfg.n_nodes = 8;
  cfg.lambda = 0.3;
  cfg.total_requests = 800;
  cfg.seed = GetParam();
  cfg.loss_by_type = {{"REQUEST", 0.05},
                      {"PRIVILEGE", 0.02},
                      {"NEW-ARBITER", 0.05}};
  cfg.max_sim_units = 50'000.0;
  const auto r = harness::run_experiment(cfg);
  EXPECT_EQ(r.safety_violations, 0u);
  EXPECT_TRUE(r.drained) << "completed " << r.completed << "/" << r.submitted;
  EXPECT_GT(r.protocol.tokens_regenerated + r.protocol.resumes_sent, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossSoak,
                         ::testing::Values<std::uint64_t>(101, 202, 303, 404,
                                                          505),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "seed" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace dmx::core
