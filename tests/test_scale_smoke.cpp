// Large-N smoke test: a 10,000-node arbiter cluster must build, run a
// bounded workload and drain cleanly.  Guards the flat, reserve-once
// per-node state introduced with the pooled message plane — before it, a
// run at this scale spent its time rehashing per-node hash maps and
// reallocating event storage.  Kept time-bounded (a few hundred CS entries)
// so it stays in tier-1.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace dmx {
namespace {

TEST(ScaleSmoke, TenThousandNodeArbiterDrains) {
  harness::register_builtin_algorithms();
  harness::ExperimentConfig cfg;
  cfg.algorithm = "arbiter-tp";
  cfg.n_nodes = 10'000;
  // Saturated aggregate arrival (~20 CS/unit vs ~5/unit service) per the
  // paper's high-load regime, spread across all nodes.
  cfg.lambda = 20.0 / 10'000;
  cfg.t_msg = 0.1;
  cfg.t_exec = 0.1;
  cfg.total_requests = 500;
  cfg.seed = 42;

  const auto r = harness::run_experiment(cfg);

  EXPECT_EQ(r.completed, 500u);
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.safety_violations, 0u);
  EXPECT_EQ(r.max_occupancy, 1);
  EXPECT_GT(r.sim_events, r.completed);
  // Fairness sanity: completions were recorded for the full node range.
  EXPECT_EQ(r.completions_per_node.size(), 10'000u);
}

}  // namespace
}  // namespace dmx
