#include <gtest/gtest.h>

#include <cmath>

#include "stats/batch_means.hpp"
#include "stats/confidence.hpp"
#include "stats/counter_map.hpp"
#include "stats/histogram.hpp"
#include "stats/moving_window.hpp"
#include "stats/welford.hpp"

namespace dmx::stats {
namespace {

TEST(Welford, KnownValues) {
  Welford w;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.add(x);
  EXPECT_EQ(w.count(), 8u);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_NEAR(w.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(w.min(), 2.0);
  EXPECT_DOUBLE_EQ(w.max(), 9.0);
  EXPECT_DOUBLE_EQ(w.sum(), 40.0);
}

TEST(Welford, EmptyIsZero) {
  Welford w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.std_error(), 0.0);
}

TEST(Welford, SingleSample) {
  Welford w;
  w.add(3.5);
  EXPECT_DOUBLE_EQ(w.mean(), 3.5);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
}

TEST(Welford, MergeEqualsCombinedStream) {
  Welford a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Welford, MergeWithEmpty) {
  Welford a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(Welford, NumericalStabilityLargeOffset) {
  Welford w;
  for (int i = 0; i < 10'000; ++i) w.add(1e9 + (i % 2 == 0 ? 0.5 : -0.5));
  EXPECT_NEAR(w.mean(), 1e9, 1e-3);
  EXPECT_NEAR(w.variance(), 0.25, 1e-4);
}

TEST(Confidence, TCriticalValues) {
  EXPECT_NEAR(t_critical_95(1), 12.706, 1e-3);
  EXPECT_NEAR(t_critical_95(10), 2.228, 1e-3);
  EXPECT_NEAR(t_critical_95(30), 2.042, 1e-3);
  EXPECT_NEAR(t_critical_95(1000), 1.96, 1e-3);
  EXPECT_DOUBLE_EQ(t_critical_95(0), 0.0);
}

TEST(Confidence, CiCoversTrueMeanTypically) {
  Welford w;
  for (int i = 0; i < 1000; ++i) w.add((i % 10) + 0.5);  // mean 5.0
  const MeanCi ci = mean_ci_95(w);
  EXPECT_TRUE(ci.contains(5.0));
  EXPECT_GT(ci.half_width, 0.0);
  EXPECT_LT(ci.half_width, 0.5);
}

TEST(Confidence, ToStringFormats) {
  MeanCi ci;
  ci.mean = 1.5;
  ci.half_width = 0.25;
  EXPECT_EQ(ci.to_string(2), "1.50 \xC2\xB1 0.25");
}

TEST(MovingWindow, MeanOverWindowOnly) {
  MovingWindow w(3);
  EXPECT_TRUE(w.empty());
  EXPECT_DOUBLE_EQ(w.mean(7.0), 7.0);  // fallback when empty
  w.add(1.0);
  w.add(2.0);
  w.add(3.0);
  EXPECT_DOUBLE_EQ(w.mean(), 2.0);
  w.add(10.0);  // evicts 1.0
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_EQ(w.size(), 3u);
}

TEST(MovingWindow, CapacityOne) {
  MovingWindow w(1);
  w.add(5.0);
  w.add(9.0);
  EXPECT_DOUBLE_EQ(w.mean(), 9.0);
}

TEST(MovingWindow, ZeroCapacityThrows) {
  EXPECT_THROW(MovingWindow w(0), std::invalid_argument);
}

TEST(MovingWindow, Reset) {
  MovingWindow w(4);
  w.add(1.0);
  w.reset();
  EXPECT_TRUE(w.empty());
  EXPECT_DOUBLE_EQ(w.mean(3.0), 3.0);
}

TEST(Histogram, BinningAndQuantiles) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) / 10.0);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_NEAR(h.quantile(0.5), 5.0, 0.2);
  EXPECT_NEAR(h.quantile(0.9), 9.0, 0.2);
}

TEST(Histogram, OverflowUnderflow) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(2.0);
  h.add(0.5);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, QuantileValidation) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_THROW((void)h.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW((void)h.quantile(1.1), std::invalid_argument);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty -> lo
}

TEST(Histogram, ConstructionValidation) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, RenderProducesOneLinePerBin) {
  Histogram h(0.0, 1.0, 5);
  h.add(0.1);
  const std::string s = h.render();
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 5);
}

TEST(CounterMap, BasicCounting) {
  CounterMap c;
  c.increment("REQUEST");
  c.increment("REQUEST", 2);
  c.increment("PRIVILEGE");
  EXPECT_EQ(c.get("REQUEST"), 3u);
  EXPECT_EQ(c.get("PRIVILEGE"), 1u);
  EXPECT_EQ(c.get("MISSING"), 0u);
  EXPECT_EQ(c.total(), 4u);
}

TEST(CounterMap, Merge) {
  CounterMap a, b;
  a.increment("x", 1);
  b.increment("x", 2);
  b.increment("y", 5);
  a.merge(b);
  EXPECT_EQ(a.get("x"), 3u);
  EXPECT_EQ(a.get("y"), 5u);
}

TEST(BatchMeans, CiWiderThanNaiveForCorrelatedStream) {
  // A slowly wandering (highly autocorrelated) stream: batch-means CI must
  // be wider than the naive per-sample CI.
  Welford naive;
  BatchMeans bm(100);
  double level = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    if (i % 500 == 0) level = (i / 500 % 2 == 0) ? 1.0 : -1.0;
    const double x = level;
    naive.add(x);
    bm.add(x);
  }
  EXPECT_GT(bm.ci().half_width, mean_ci_95(naive).half_width);
  EXPECT_EQ(bm.count(), 10'000u);
  EXPECT_EQ(bm.complete_batches(), 100u);
}

TEST(BatchMeans, FallsBackWithFewBatches) {
  BatchMeans bm(1000);
  for (int i = 0; i < 10; ++i) bm.add(static_cast<double>(i));
  EXPECT_EQ(bm.complete_batches(), 0u);
  EXPECT_DOUBLE_EQ(bm.ci().mean, 4.5);
}

TEST(BatchMeans, ZeroBatchSizeThrows) {
  EXPECT_THROW(BatchMeans bm(0), std::invalid_argument);
}

}  // namespace
}  // namespace dmx::stats
