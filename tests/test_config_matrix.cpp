// Exhaustive configuration matrix for the paper's algorithm: every
// combination of batch ordering, sequenced mode, starvation-free mode,
// recovery mode and collection/forwarding windows must be safe and live at
// a contended load.  48+ configurations, each a full simulation.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "harness/experiment.hpp"
#include "testbed.hpp"

namespace dmx::core {
namespace {

// (order, sequenced, starvation_free, recovery, t_fwd)
using Cfg = std::tuple<std::string, bool, bool, bool, double>;

class ConfigMatrix : public ::testing::TestWithParam<Cfg> {};

TEST_P(ConfigMatrix, SafeAndLive) {
  const auto& [order, sequenced, sf, recovery, t_fwd] = GetParam();
  harness::ExperimentConfig cfg;
  cfg.algorithm = sf ? "arbiter-tp-sf" : "arbiter-tp";
  cfg.n_nodes = 10;
  cfg.lambda = 0.35;
  cfg.total_requests = 4'000;
  cfg.seed = 91;
  cfg.params.set("order", order)
      .set("sequenced", sequenced ? 1.0 : 0.0)
      .set("recovery", recovery ? 1.0 : 0.0)
      .set("t_fwd", t_fwd);
  const auto r = harness::run_experiment(cfg);
  EXPECT_EQ(r.safety_violations, 0u);
  EXPECT_TRUE(r.drained) << "completed " << r.completed << "/" << r.submitted;
  EXPECT_GT(r.messages_per_cs, 1.0);
  EXPECT_LT(r.messages_per_cs, 15.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, ConfigMatrix,
    ::testing::Combine(::testing::Values("fcfs", "sequence", "priority"),
                       ::testing::Bool(),   // sequenced
                       ::testing::Bool(),   // starvation-free
                       ::testing::Bool(),   // recovery
                       ::testing::Values(0.0, 0.1)),
    [](const ::testing::TestParamInfo<Cfg>& pinfo) {
      // NOTE: no structured bindings here — their commas confuse the macro.
      std::string name = std::get<0>(pinfo.param);
      if (std::get<1>(pinfo.param)) name += "_seq";
      if (std::get<2>(pinfo.param)) name += "_sf";
      if (std::get<3>(pinfo.param)) name += "_rec";
      name += std::get<4>(pinfo.param) > 0.0 ? "_fwd" : "_nofwd";
      return name;
    });

// Churn matrix: repeated crash/restart cycles of rotating victim nodes
// while demand keeps flowing.  Every critical section that completes must
// be exclusive, and the demand of nodes alive at the end must drain.
class ChurnMatrix : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnMatrix, SurvivesCrashRestartChurn) {
  mutex::ParamSet p;
  p.set("recovery", 1.0)
      .set("token_timeout", 2.0)
      .set("enquiry_timeout", 0.5)
      .set("arbiter_timeout", 4.0)
      .set("probe_timeout", 0.5)
      .set("resubmit_after_misses", 1.0)
      .set("request_retry_timeout", 4.0);
  testbed::MutexCluster tb("arbiter-tp", 6, p, 0.1, 0.1, GetParam());

  sim::Rng rng(GetParam() * 977 + 5);
  // 40 time units of action: a submission roughly every 0.5 units from a
  // random node, and a crash/restart cycle every ~8 units hitting rotating
  // victims (never the same node twice in a row).
  for (int k = 0; k < 80; ++k) {
    tb.submit_at(0.5 * k + rng.uniform(0.0, 0.4),
                 static_cast<std::size_t>(rng.uniform_int(0, 5)));
  }
  for (int c = 0; c < 5; ++c) {
    const auto victim = static_cast<std::size_t>((c * 2 + 1) % 6);
    const double when = 4.0 + 8.0 * c;
    tb.crash_at(when, victim);
    tb.restart_at(when + 3.0, victim);
  }
  tb.sim().run_until(sim::SimTime::units(400.0));

  EXPECT_EQ(tb.monitor.violations(), 0u);
  // Crashed nodes abort their demand; everything else must be served.
  std::uint64_t aborted = 0;
  for (const auto& d : tb.drivers) aborted += d->aborted_by_crash();
  EXPECT_EQ(tb.total_completed() + aborted, tb.total_submitted())
      << "completed=" << tb.total_completed() << " aborted=" << aborted
      << " submitted=" << tb.total_submitted();
  EXPECT_GT(tb.total_completed(), 40u);  // churn must not stall the system
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnMatrix,
                         ::testing::Values<std::uint64_t>(11, 22, 33),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "seed" + std::to_string(i.param);
                         });

}  // namespace
}  // namespace dmx::core
